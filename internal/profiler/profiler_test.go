package profiler

import (
	"testing"

	"pka/internal/gpu"
	"pka/internal/silicon"
	"pka/internal/trace"
)

func sample() trace.KernelDesc {
	return trace.KernelDesc{
		ID: 7, Name: "volta_sgemm_128x64", Grid: trace.D2(32, 16), Block: trace.D1(256),
		SharedMemPerBlock: 8192,
		Mix:               trace.InstrMix{Compute: 120, GlobalLoads: 12, SharedLoads: 30, SharedStores: 8},
		CoalescingFactor:  4, WorkingSetBytes: 8 << 20, StridedFraction: 0.9,
		DivergenceEff: 1, Seed: 3,
	}
}

func TestDetailedRecordContents(t *testing.T) {
	k := sample()
	dev := gpu.VoltaV100()
	rec, cost, err := Detailed(dev, &k)
	if err != nil {
		t.Fatal(err)
	}
	if rec.KernelID != 7 || rec.Name != k.Name || rec.Grid != k.Grid {
		t.Errorf("record identity wrong: %+v", rec)
	}
	if len(rec.Features) != trace.NumFeatures {
		t.Errorf("features len = %d", len(rec.Features))
	}
	sil, _ := silicon.ExecuteKernel(dev, &k)
	if rec.Cycles != sil.Cycles {
		t.Errorf("cycles %d != silicon %d", rec.Cycles, sil.Cycles)
	}
	wantCost := sil.TimeSeconds*DetailedReplayOverhead + DetailedFixedSeconds
	if cost != wantCost {
		t.Errorf("cost = %v, want %v", cost, wantCost)
	}
}

func TestDetailedCostDwarfsLight(t *testing.T) {
	k := sample()
	dev := gpu.VoltaV100()
	_, dCost, err := Detailed(dev, &k)
	if err != nil {
		t.Fatal(err)
	}
	_, lCost, err := Light(dev, &k)
	if err != nil {
		t.Fatal(err)
	}
	if dCost < 100*lCost {
		t.Errorf("detailed cost %v should dwarf light cost %v", dCost, lCost)
	}
}

func TestLightRecordOmitsDetailedData(t *testing.T) {
	k := sample()
	rec, cost, err := Light(gpu.VoltaV100(), &k)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != k.Name || rec.Grid != k.Grid || rec.Block != k.Block || rec.SharedMem != 8192 {
		t.Errorf("light record wrong: %+v", rec)
	}
	if cost <= 0 {
		t.Error("light profiling should still cost time")
	}
}

func TestProfilersRejectInvalidKernels(t *testing.T) {
	k := sample()
	k.DivergenceEff = 0
	if _, _, err := Detailed(gpu.VoltaV100(), &k); err == nil {
		t.Error("Detailed accepted invalid kernel")
	}
	if _, _, err := Light(gpu.VoltaV100(), &k); err == nil {
		t.Error("Light accepted invalid kernel")
	}
}

func TestLightFeaturesShape(t *testing.T) {
	f := LightFeatures("my_kernel", trace.D1(100), trace.D1(128), 4096)
	if len(f) != NumLightFeatures {
		t.Fatalf("len = %d, want %d", len(f), NumLightFeatures)
	}
	if f[0] != 100 || f[1] != 128 || f[2] != 12800 || f[3] != 4096 {
		t.Errorf("launch features wrong: %v", f)
	}
	var trigrams float64
	for _, v := range f[4:] {
		trigrams += v
	}
	if trigrams != float64(len("my_kernel")-2) {
		t.Errorf("trigram count = %v", trigrams)
	}
}

func TestLightFeaturesDiscriminateNames(t *testing.T) {
	a := LightFeatures("sgemm_nt_128", trace.D1(10), trace.D1(64), 0)
	b := LightFeatures("reduce_kernel", trace.D1(10), trace.D1(64), 0)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different names hashed identically across all buckets")
	}
}

func TestFeaturesOfHelpersConsistent(t *testing.T) {
	k := sample()
	dev := gpu.VoltaV100()
	dRec, _, err := Detailed(dev, &k)
	if err != nil {
		t.Fatal(err)
	}
	lRec, _, err := Light(dev, &k)
	if err != nil {
		t.Fatal(err)
	}
	fd := FeaturesOfDetailed(dRec, k.SharedMemPerBlock)
	fl := FeaturesOfLight(lRec)
	for i := range fd {
		if fd[i] != fl[i] {
			t.Fatalf("feature %d differs between detailed (%v) and light (%v) views", i, fd[i], fl[i])
		}
	}
}

func TestShortNameNoTrigrams(t *testing.T) {
	f := LightFeatures("ab", trace.D1(1), trace.D1(32), 0)
	for _, v := range f[4:] {
		if v != 0 {
			t.Error("2-char name should produce no trigrams")
		}
	}
}
