package tbpoint

import (
	"errors"
	"testing"

	"pka/internal/gpu"
	"pka/internal/workload"
)

func TestSelectGaussian(t *testing.T) {
	w := workload.Find("Rodinia/gauss_208")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K < 1 || sel.K > w.N {
		t.Errorf("K = %d", sel.K)
	}
	if sel.SelectionErrorPct > 10 {
		t.Errorf("selection error %.2f%%", sel.SelectionErrorPct)
	}
	total := 0
	for _, g := range sel.Groups {
		total += g.Count
		if g.RepIndex < 0 || g.RepIndex >= w.N {
			t.Errorf("bad representative index %d", g.RepIndex)
		}
	}
	if total != w.N {
		t.Errorf("group counts sum to %d, want %d", total, w.N)
	}
}

func TestScalingWall(t *testing.T) {
	w := workload.Find("MLPerf/ssd_training")
	if _, err := Select(gpu.VoltaV100(), w, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge — TBPoint must not scale to MLPerf", err)
	}
}

func TestMoreConservativeThanPKS(t *testing.T) {
	// TBPoint's threshold sweep plus per-kernel statistics tends to keep
	// more groups than PKS's K sweep on heterogeneous apps; at minimum it
	// must produce a valid, low-error clustering.
	w := workload.Find("Polybench/gramschmidt")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.SelectionErrorPct > 10 {
		t.Errorf("gramschmidt selection error %.2f%%", sel.SelectionErrorPct)
	}
	if sel.BlockFraction != 0.5 {
		t.Errorf("default block fraction = %v", sel.BlockFraction)
	}
}

func TestSweepRecordsErrors(t *testing.T) {
	w := workload.Find("Parboil/histo")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.SweepErrors) == 0 {
		t.Fatal("no sweep trace")
	}
	if sel.Threshold < 0.01-1e-9 || sel.Threshold > 0.2+1e-9 {
		t.Errorf("threshold %.3f outside the paper's [0.01, 0.2] sweep", sel.Threshold)
	}
}

func TestSingleKernelWorkload(t *testing.T) {
	w := workload.Find("Polybench/gemm")
	sel, err := Select(gpu.VoltaV100(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 || sel.Groups[0].Count != 1 {
		t.Errorf("single-kernel clustering: %+v", sel)
	}
	if sel.SelectionErrorPct != 0 {
		t.Errorf("error = %v, want 0", sel.SelectionErrorPct)
	}
}
