// Package tbpoint implements the TBPoint baseline (Huang et al., IPDPS
// 2014) the paper compares against in Section 5.1. TBPoint reduces the
// kernels simulated by hierarchically clustering per-kernel feature
// vectors gathered from full functional simulation, sweeping a merge
// threshold instead of an interpretable K, and reducing intra-kernel work
// conservatively by simulating a fixed fraction of each representative's
// thread blocks.
//
// Two deliberate fidelity points from the paper are preserved:
//
//   - TBPoint needs statistics for *every* kernel from functional
//     simulation before it can cluster, and hierarchical clustering has a
//     quadratic memory footprint — so the implementation refuses
//     workloads beyond the scaling wall (cluster.MaxHierarchicalPoints),
//     exactly the reason the paper gives for why TBPoint cannot handle
//     MLPerf-scale applications.
//
//   - In lieu of the original's hand-tuned threshold, the paper's
//     comparison sweeps 20 thresholds in [0.01, 0.2] and applies the same
//     target-error criterion Principal Kernel Selection uses; this
//     implementation does the same.
package tbpoint

import (
	"errors"
	"fmt"
	"math"

	"pka/internal/cluster"
	"pka/internal/gpu"
	"pka/internal/pkp"
	"pka/internal/profiler"
	"pka/internal/silicon"
	"pka/internal/sim"
	"pka/internal/stats"
	"pka/internal/trace"
	"pka/internal/workload"
)

// Options configures the baseline.
type Options struct {
	// TargetErrorPct matches PKS's selection criterion (default 5).
	TargetErrorPct float64
	// NumThresholds is the sweep resolution over [MinThreshold,
	// MaxThreshold] (default 20 over [0.01, 0.2]).
	NumThresholds              int
	MinThreshold, MaxThreshold float64
	// BlockFraction is the conservative intra-kernel reduction: the
	// fraction of each representative's thread blocks simulated before
	// linear projection (default 0.5).
	BlockFraction float64
}

func (o Options) filled() Options {
	if o.TargetErrorPct <= 0 {
		o.TargetErrorPct = 5
	}
	if o.NumThresholds <= 0 {
		o.NumThresholds = 20
	}
	if o.MinThreshold <= 0 {
		o.MinThreshold = 0.01
	}
	if o.MaxThreshold <= 0 {
		o.MaxThreshold = 0.2
	}
	if o.BlockFraction <= 0 || o.BlockFraction > 1 {
		o.BlockFraction = 0.5
	}
	return o
}

// ErrTooLarge reports that the workload exceeds TBPoint's scaling wall.
var ErrTooLarge = errors.New("tbpoint: workload too large for hierarchical clustering")

// Group is one cluster with its first-chronological representative.
type Group struct {
	RepIndex int
	Count    int
	// RepCycles is the representative's functional-simulation cycle count
	// used during selection.
	RepCycles int64
}

// Selection is TBPoint's kernel-reduction output.
type Selection struct {
	Workload  string
	Threshold float64
	K         int
	Groups    []Group
	// SelectionErrorPct is the projected-vs-actual error over the
	// functional-simulation totals.
	SelectionErrorPct float64
	// BlockFraction echoes the intra-kernel reduction setting.
	BlockFraction float64
	SweepErrors   []float64
}

// Select runs TBPoint's kernel clustering for the workload. The per-kernel
// statistics that the original gathers via full functional simulation
// (Ocelot) come from the detailed profiler here — the same information at
// the same "must touch every kernel" cost structure.
func Select(dev gpu.Device, w *workload.Workload, opts Options) (*Selection, error) {
	o := opts.filled()
	if w.N > cluster.MaxHierarchicalPoints {
		return nil, fmt.Errorf("%w: %s has %d kernels", ErrTooLarge, w.FullName(), w.N)
	}

	recs := make([]profiler.DetailedRecord, 0, w.N)
	next := w.Iterator()
	for k := next(); k != nil; k = next() {
		rec, _, err := profiler.Detailed(dev, k)
		if err != nil {
			return nil, fmt.Errorf("tbpoint: functional simulation: %w", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, errors.New("tbpoint: workload has no kernels")
	}

	// Standardized log-compressed feature vectors; distances are
	// normalized by the maximum pairwise distance so the paper's
	// [0.01, 0.2] threshold range is scale-free.
	points := make([][]float64, len(recs))
	for i, rec := range recs {
		row := make([]float64, trace.NumFeatures)
		for j, v := range rec.Features {
			if j == 10 {
				row[j] = v
			} else {
				row[j] = math.Log1p(v)
			}
		}
		points[i] = row
	}
	standardize(points)
	maxDist := maxPairwiseDistance(points)
	if maxDist == 0 {
		maxDist = 1
	}

	var total int64
	for _, rec := range recs {
		total += rec.Cycles
	}

	// Build the dendrogram once, then sweep cut thresholds from coarsest
	// (fewest groups) to finest, keeping the first that meets the target
	// — the same "most reduction at acceptable error" criterion PKS
	// applies.
	dendro, err := cluster.BuildDendrogram(points)
	if err != nil {
		return nil, err
	}
	sel := &Selection{Workload: w.FullName(), BlockFraction: o.BlockFraction}
	bestErr := math.Inf(1)
	var bestAssign []int
	var bestK int
	for i := 0; i < o.NumThresholds; i++ {
		frac := o.MaxThreshold - float64(i)*(o.MaxThreshold-o.MinThreshold)/float64(o.NumThresholds-1)
		assign, k := dendro.Cut(frac * maxDist)
		errPct := projectionError(assign, k, recs, total)
		sel.SweepErrors = append(sel.SweepErrors, errPct)
		if errPct < bestErr {
			bestErr = errPct
			bestAssign, bestK = assign, k
			sel.Threshold = frac
		}
		if errPct <= o.TargetErrorPct {
			bestAssign, bestK, bestErr = assign, k, errPct
			sel.Threshold = frac
			break
		}
	}

	sel.K = bestK
	sel.SelectionErrorPct = bestErr
	sel.Groups = buildGroups(bestAssign, bestK, recs)
	return sel, nil
}

func projectionError(assign []int, k int, recs []profiler.DetailedRecord, total int64) float64 {
	groups := buildGroups(assign, k, recs)
	var projected int64
	for _, g := range groups {
		projected += g.RepCycles * int64(g.Count)
	}
	return stats.AbsPctErr(float64(projected), float64(total))
}

func buildGroups(assign []int, k int, recs []profiler.DetailedRecord) []Group {
	groups := make([]Group, k)
	for i := range groups {
		groups[i].RepIndex = -1
	}
	for i, c := range assign {
		groups[c].Count++
		if groups[c].RepIndex < 0 || recs[i].KernelID < groups[c].RepIndex {
			groups[c].RepIndex = recs[i].KernelID
			groups[c].RepCycles = recs[i].Cycles
		}
	}
	out := groups[:0]
	for _, g := range groups {
		if g.Count > 0 {
			out = append(out, g)
		}
	}
	return out
}

func standardize(points [][]float64) {
	if len(points) == 0 {
		return
	}
	dim := len(points[0])
	mean := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	n := float64(len(points))
	for j := range mean {
		mean[j] /= n
	}
	sd := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			d := v - mean[j]
			sd[j] += d * d
		}
	}
	for j := range sd {
		sd[j] = math.Sqrt(sd[j] / n)
		if sd[j] == 0 {
			sd[j] = 1
		}
	}
	for _, p := range points {
		for j := range p {
			p[j] = (p[j] - mean[j]) / sd[j]
		}
	}
}

// SimResult is the outcome of simulating a TBPoint selection.
type SimResult struct {
	ProjCycles    int64
	SimWarpInstrs int64
	IPC           float64
	DRAMUtil      float64
}

// Simulate runs each representative for BlockFraction of its thread
// blocks, projects the remainder linearly (TBPoint's conservative
// intra-kernel reduction), and weights by group population.
func Simulate(dev gpu.Device, w *workload.Workload, sel *Selection, capCycles int64) (SimResult, error) {
	if capCycles <= 0 {
		capCycles = sim.DefaultMaxCycles
	}
	s := sim.New(dev)
	var out SimResult
	var kernelCycles int64
	var threadInstrs, dramWeighted float64
	for _, g := range sel.Groups {
		k := w.Kernel(g.RepIndex)
		target := int(math.Ceil(sel.BlockFraction * float64(k.Grid.Count())))
		if target < 1 {
			target = 1
		}
		ctl := sim.ControllerFunc(func(t *sim.Telemetry) bool {
			return t.BlocksCompleted >= target
		})
		res, err := s.RunKernel(&k, sim.Options{Controller: ctl, MaxCycles: capCycles})
		if err != nil {
			return out, fmt.Errorf("tbpoint: rep %d: %w", g.RepIndex, err)
		}
		proj := pkp.Project(res)
		weight := int64(g.Count)
		kernelCycles += proj.Cycles * weight
		out.SimWarpInstrs += proj.SimulatedWarpInstrs
		threadInstrs += proj.ThreadInstrs * float64(weight)
		dramWeighted += proj.DRAMUtil * float64(proj.Cycles*weight)
	}
	out.ProjCycles = kernelCycles + int64(w.N)*silicon.KernelLaunchOverheadCycles
	if kernelCycles > 0 {
		out.IPC = threadInstrs / float64(kernelCycles)
		out.DRAMUtil = dramWeighted / float64(kernelCycles)
	}
	return out, nil
}

// maxPairwiseDistance samples pairwise distances (capped at ~1e6 pairs)
// and returns the maximum observed.
func maxPairwiseDistance(points [][]float64) float64 {
	n := len(points)
	stride := 1
	for n/stride > 1000 {
		stride++
	}
	var maxD float64
	for i := 0; i < n; i += stride {
		for j := i + stride; j < n; j += stride {
			var d float64
			for k := range points[i] {
				diff := points[i][k] - points[j][k]
				d += diff * diff
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	return math.Sqrt(maxD)
}
