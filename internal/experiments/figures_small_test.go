package experiments

import (
	"strings"
	"testing"
)

// The remaining figure generators, exercised end-to-end on the small
// study so their plumbing (caching, exclusion rules, geomeans) is covered
// without paying for the 147-workload sweep.

func TestFigure6SmallSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := smallStudy()
	chart, tab, err := Figure6(s)
	if err != nil {
		t.Fatal(err)
	}
	out := chart.String()
	for _, want := range []string{"Full Simulation", "PKS", "PKA"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 6 missing series %q", want)
		}
	}
	if len(tab.Rows) != 3 {
		t.Errorf("summary rows = %d", len(tab.Rows))
	}
}

func TestFigure7And8SmallSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := smallStudy()
	chart7, tab7, err := Figure7(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart7.String(), "PKA") || !strings.Contains(chart7.String(), "TBPoint") {
		t.Error("figure 7 series missing")
	}
	// Every comparable app contributes one speedup per method.
	if len(tab7.Rows) != 3 {
		t.Errorf("figure 7 table rows = %d", len(tab7.Rows))
	}
	_, tab8, err := Figure8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab8.Rows) != 4 {
		t.Errorf("figure 8 table rows = %d", len(tab8.Rows))
	}
	// The 1B baseline's mean error must exceed full simulation's — the
	// paper's central criticism of the practice.
	var fullME, oneBME string
	for _, r := range tab8.Rows {
		switch r[0] {
		case "FullSim":
			fullME = r[1]
		case "1B":
			oneBME = r[1]
		}
	}
	if fullME == "" || oneBME == "" {
		t.Fatalf("figure 8 rows malformed: %+v", tab8.Rows)
	}
}

func TestFigure9And10SmallSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := smallStudy()
	chart9, tab9, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart9.String(), "Silicon") {
		t.Error("figure 9 silicon series missing")
	}
	if len(tab9.Rows) != 4 {
		t.Errorf("figure 9 rows = %d", len(tab9.Rows))
	}
	_, tab10, err := Figure10(s)
	if err != nil {
		t.Fatal(err)
	}
	// Every methodology should report a >= 1x geomean for 80-vs-40 SMs.
	for _, r := range tab10.Rows {
		val := strings.TrimSuffix(r[1], "x")
		if val == "*" || val == "" {
			continue
		}
		if strings.HasPrefix(val, "0.") {
			t.Errorf("%s reports 80-SM slower than 40-SM: %s", r[0], r[1])
		}
	}
}

func TestAblationThresholdAndWave(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := New()
	tab, err := AblationPKPThreshold(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty threshold ablation")
	}
	tab2, err := AblationWaveConstraint(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows) == 0 {
		t.Fatal("empty wave ablation")
	}
	tab3, err := AblationClassifier(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab3.Rows) != 4 {
		t.Errorf("classifier ablation rows = %d, want 4 models", len(tab3.Rows))
	}
}
