package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pka/internal/gpu"
	"pka/internal/parallel"
	"pka/internal/report"
	"pka/internal/stats"
	"pka/internal/workload"
)

// Table3 reproduces the selection-example table: for a handful of
// workloads, the kernel IDs PKS selects and the population of each group.
func Table3(s *Study) (*report.Table, error) {
	tab := &report.Table{
		Title:   "Table 3: Principal Kernel Selection output examples (target error 5%)",
		Columns: []string{"Suite", "Workload", "Selected kernel IDs", "Group counts"},
	}
	names := []string{
		"Rodinia/gauss_208",
		"Rodinia/bfs65536",
		"Parboil/histo",
		"Parboil/cutcp",
		"Polybench/fdtd2d",
		"Polybench/gramschmidt",
		"Cutlass/640x32x640_wgemm",
		"Cutlass/1024x1024x1024_sgemm",
	}
	rows, err := parallel.Map(s.Cfg.Parallelism, names, func(_ int, name string) ([]string, error) {
		w := workload.Find(name)
		if w == nil {
			return nil, fmt.Errorf("table3: workload %s missing", name)
		}
		sel, err := s.Selection(w)
		if err != nil {
			return nil, err
		}
		ids := make([]string, 0, sel.K)
		counts := make([]string, 0, sel.K)
		groups := make([]int, 0, len(sel.Groups))
		for gi := range sel.Groups {
			groups = append(groups, gi)
		}
		sort.Slice(groups, func(a, b int) bool {
			return sel.Groups[groups[a]].RepIndex < sel.Groups[groups[b]].RepIndex
		})
		for _, gi := range groups {
			g := sel.Groups[gi]
			ids = append(ids, fmt.Sprint(g.RepIndex))
			counts = append(counts, fmt.Sprint(g.Count()))
		}
		return []string{w.Suite, w.Name, strings.Join(ids, ","), strings.Join(counts, ",")}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tab.AddRow(row...)
	}
	return tab, nil
}

// table4Row carries one (possibly aggregated) Table-4 line.
type table4Row struct {
	label string
	n     int // workloads aggregated

	voltaErr, voltaSU   float64
	turingErr, turingSU float64
	ampereErr, ampereSU float64
	simErr              float64
	pksErr, pksHours    float64
	pksSU               float64
	pkaErr, pkaHours    float64
	pkaSU               float64
	dramFull, dramPKA   float64

	noTuringAmpere bool // "*" columns
	noSim          bool
	noFullSim      bool // sim error/DRAM-full unavailable (infeasible)
}

// Table4 reproduces the paper's big results table: PKS silicon error and
// speedup on Volta/Turing/Ampere, the simulator's own error, PKS and PKA
// simulation error with projected times, and full-vs-PKA DRAM utilization.
// Rodinia/Parboil/Polybench/MLPerf report per application; Cutlass and
// DeepBench report sub-family means, as the paper does.
func Table4(s *Study) (*report.Table, error) {
	turing := gpu.TuringRTX2060()
	ampere := gpu.AmpereRTX3070()

	// Fan the expensive per-workload pipelines out across the pool; the
	// serial pass below only shuffles the precomputed rows, so row order
	// (and therefore rendered output) matches a serial run byte for byte.
	perWorkload, err := parallel.Map(s.Cfg.Parallelism, s.Workloads(),
		func(_ int, w *workload.Workload) (table4Row, error) {
			r, err := table4For(s, w, turing, ampere)
			if err != nil {
				return r, fmt.Errorf("table4: %s: %w", w.FullName(), err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}

	var rows []table4Row
	groups := map[string][]table4Row{}
	var groupOrder []string

	for i, w := range s.Workloads() {
		r := perWorkload[i]
		switch w.Suite {
		case "Cutlass", "DeepBench":
			fam := w.Suite + " " + family(w.Name)
			if _, ok := groups[fam]; !ok {
				groupOrder = append(groupOrder, fam)
			}
			groups[fam] = append(groups[fam], r)
		default:
			rows = append(rows, r)
		}
	}
	for _, fam := range groupOrder {
		rows = append(rows, aggregate(fam, groups[fam]))
	}

	tab := &report.Table{
		Title: "Table 4: cycle error and speedup for PKS in silicon and simulation; PKA in simulation",
		Columns: []string{
			"Application",
			"VoltaErr%", "VoltaSU",
			"TuringErr%", "TuringSU",
			"AmpereErr%", "AmpereSU",
			"SimErr%",
			"PKSErr%", "PKS SimTime(SU)",
			"PKAErr%", "PKA SimTime(SU)",
			"DRAM Full", "DRAM PKA",
		},
	}
	star := "*"
	su := func(v float64) string { return report.F(v, 1) + "x" }
	for _, r := range rows {
		label := r.label
		if r.n > 1 {
			label = fmt.Sprintf("%s (mean of %d)", r.label, r.n)
		}
		cells := []string{label, report.F(r.voltaErr, 1), su(r.voltaSU)}
		if r.noTuringAmpere {
			cells = append(cells, star, star, star, star)
		} else {
			cells = append(cells, report.F(r.turingErr, 1), su(r.turingSU),
				report.F(r.ampereErr, 1), su(r.ampereSU))
		}
		if r.noSim {
			cells = append(cells, star, star, star, star, star, star, star)
		} else {
			simErr := star
			dramFull := star
			if !r.noFullSim {
				simErr = report.F(r.simErr, 1)
				dramFull = report.F(r.dramFull*100, 1)
			}
			cells = append(cells,
				simErr,
				report.F(r.pksErr, 1), report.Hours(r.pksHours)+" ("+su(r.pksSU)+")",
				report.F(r.pkaErr, 1), report.Hours(r.pkaHours)+" ("+su(r.pkaSU)+")",
				dramFull, report.F(r.dramPKA*100, 1),
			)
		}
		tab.AddRow(cells...)
	}
	tab.Notes = append(tab.Notes,
		"'*' = no data: trace/profile kernel-count mismatch (myocyte, cuDNN autotune), MLPerf memory limits on Turing/Ampere, or full simulation infeasible",
		"SimTime is projected at the modeled Accel-Sim rate; SU is simulated-work reduction vs full simulation")
	return tab, nil
}

// table4For computes one workload's row.
func table4For(s *Study, w *workload.Workload, turing, ampere gpu.Device) (table4Row, error) {
	r := table4Row{label: w.FullName(), n: 1}

	if w.Quirk == "trace-mismatch" {
		r.noTuringAmpere = true
		r.noSim = true
		return r, nil
	}

	sel, err := s.Selection(w)
	if err != nil {
		return r, err
	}
	r.voltaErr = sel.SelectionErrorPct
	r.voltaSU = sel.SiliconSpeedup

	// Cross-generation silicon: MLPerf does not fit on the consumer
	// cards; cuDNN TensorCore training mismatches there too.
	if w.Suite == "MLPerf" || w.Quirk == "cudnn-autotune-tc" {
		r.noTuringAmpere = true
	} else {
		tg, err := s.CrossGen(turing, w)
		if err != nil {
			return r, err
		}
		r.turingErr, r.turingSU = tg.ErrorPct(), tg.Speedup()
		ag, err := s.CrossGen(ampere, w)
		if err != nil {
			return r, err
		}
		r.ampereErr, r.ampereSU = ag.ErrorPct(), ag.Speedup()
	}

	// Simulation columns: the CUDA-core cuDNN training apps lose their
	// simulation data to the autotune mismatch.
	if w.Quirk == "cudnn-autotune" {
		r.noSim = true
		return r, nil
	}
	dev := s.SelectionDevice()
	sil, err := s.Silicon(dev, w)
	if err != nil {
		return r, err
	}
	full, err := s.Full(dev, w)
	if err != nil {
		return r, err
	}
	if full == nil {
		r.noFullSim = true
	} else {
		r.simErr = stats.AbsPctErr(float64(full.ProjCycles), float64(sil.Cycles))
		r.dramFull = full.DRAMUtil
	}
	pksSim, err := s.Sampled(dev, w, false)
	if err != nil {
		return r, err
	}
	pkaSim, err := s.Sampled(dev, w, true)
	if err != nil {
		return r, err
	}
	r.pksErr, r.pksHours, r.pksSU = pksSim.ErrorPct, pksSim.SimHours, pksSim.SpeedupVsFull
	r.pkaErr, r.pkaHours, r.pkaSU = pkaSim.ErrorPct, pkaSim.SimHours, pkaSim.SpeedupVsFull
	r.dramPKA = pkaSim.DRAMUtil
	return r, nil
}

// family strips the trailing input index from a DeepBench/Cutlass workload
// name ("conv_train_tc_3" -> "conv_train_tc"; "640x32x640_sgemm" ->
// "sgemm").
func family(name string) string {
	if i := strings.LastIndexByte(name, '_'); i >= 0 {
		suffix := name[i+1:]
		if suffix == "sgemm" || suffix == "wgemm" {
			return suffix
		}
		return name[:i]
	}
	return name
}

// aggregate means the numeric columns of a sub-family, propagating "*"
// when every member lacks the column.
func aggregate(label string, rs []table4Row) table4Row {
	out := table4Row{label: label, n: len(rs), noTuringAmpere: true, noSim: true, noFullSim: true}
	var ta, sim, fullN int
	for _, r := range rs {
		out.voltaErr += r.voltaErr
		out.voltaSU += r.voltaSU
		if !r.noTuringAmpere {
			ta++
			out.turingErr += r.turingErr
			out.turingSU += r.turingSU
			out.ampereErr += r.ampereErr
			out.ampereSU += r.ampereSU
		}
		if !r.noSim {
			sim++
			out.pksErr += r.pksErr
			out.pksHours += r.pksHours
			out.pksSU += r.pksSU
			out.pkaErr += r.pkaErr
			out.pkaHours += r.pkaHours
			out.pkaSU += r.pkaSU
			out.dramPKA += r.dramPKA
			if !r.noFullSim {
				fullN++
				out.simErr += r.simErr
				out.dramFull += r.dramFull
			}
		}
	}
	n := float64(len(rs))
	out.voltaErr /= n
	out.voltaSU /= n
	if ta > 0 {
		out.noTuringAmpere = false
		out.turingErr /= float64(ta)
		out.turingSU /= float64(ta)
		out.ampereErr /= float64(ta)
		out.ampereSU /= float64(ta)
	}
	if sim > 0 {
		out.noSim = false
		out.pksErr /= float64(sim)
		out.pksSU /= float64(sim)
		out.pkaErr /= float64(sim)
		out.pkaSU /= float64(sim)
		out.dramPKA /= float64(sim)
		// Hours aggregate as totals-per-app means.
		out.pksHours /= float64(sim)
		out.pkaHours /= float64(sim)
	}
	if fullN > 0 {
		out.noFullSim = false
		out.simErr /= float64(fullN)
		out.dramFull /= float64(fullN)
	}
	return out
}

// Table4SuiteSummary condenses Table 4 into per-suite means — the shape
// the paper's conclusion quotes (Rodinia 7.2x @ 12.6% ... MLPerf 1987x @
// 28.5%).
func Table4SuiteSummary(s *Study) (*report.Table, error) {
	turing := gpu.TuringRTX2060()
	ampere := gpu.AmpereRTX3070()
	type acc struct {
		errs, sus []float64
	}
	var eligible []*workload.Workload
	for _, w := range s.Workloads() {
		if w.Quirk == "" {
			eligible = append(eligible, w)
		}
	}
	perWorkload, err := parallel.Map(s.Cfg.Parallelism, eligible,
		func(_ int, w *workload.Workload) (table4Row, error) {
			return table4For(s, w, turing, ampere)
		})
	if err != nil {
		return nil, err
	}
	suites := map[string]*acc{}
	var order []string
	for i, w := range eligible {
		r := perWorkload[i]
		a, ok := suites[w.Suite]
		if !ok {
			a = &acc{}
			suites[w.Suite] = a
			order = append(order, w.Suite)
		}
		a.errs = append(a.errs, r.voltaErr)
		a.sus = append(a.sus, r.voltaSU)
	}
	tab := &report.Table{
		Title:   "Table 4 suite summary: PKS silicon error and geomean speedup (Volta)",
		Columns: []string{"Suite", "Mean error %", "GeoMean speedup"},
	}
	for _, suite := range order {
		a := suites[suite]
		tab.AddRow(suite, report.F(stats.Mean(a.errs), 1), report.F(stats.GeoMean(a.sus), 1)+"x")
	}
	return tab, nil
}
