package experiments

import (
	"fmt"
	"sort"

	"pka/internal/gpu"
	"pka/internal/parallel"
	"pka/internal/pkp"
	"pka/internal/profiler"
	"pka/internal/report"
	"pka/internal/silicon"
	"pka/internal/sim"
	"pka/internal/stats"
	"pka/internal/workload"
)

// Figure1 reproduces the paper's opening landscape: per workload, the
// silicon execution time, the time to profile the 12 Table-2 statistics in
// silicon, and the projected time to simulate the whole application —
// spanning microseconds to centuries on a log axis.
func Figure1(s *Study) (*report.Chart, *report.Table, error) {
	type row struct {
		name                string
		silicon, prof, simH float64 // hours
	}
	dev := s.SelectionDevice()
	rows, err := parallel.Map(s.Cfg.Parallelism, s.Workloads(),
		func(_ int, w *workload.Workload) (row, error) {
			var silSec, profSec float64
			next := w.Iterator()
			for k := next(); k != nil; k = next() {
				r, err := silicon.ExecuteKernel(dev, k)
				if err != nil {
					return row{}, err
				}
				silSec += r.TimeSeconds
				profSec += r.TimeSeconds*profiler.DetailedReplayOverhead + profiler.DetailedFixedSeconds
			}
			simH := s.Cfg.SimHours(int64(float64(w.ApproxWarpInstructions(1<<62)) * dev.ISAScale))
			return row{w.FullName(), silSec / 3600, profSec / 3600, simH}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].simH < rows[j].simH })

	chart := &report.Chart{
		Title:  "Figure 1: time to execute, profile, and simulate 147 workloads",
		YLabel: "hours",
		LogY:   true,
	}
	var silS, profS, simS []float64
	for _, r := range rows {
		silS = append(silS, r.silicon)
		profS = append(profS, r.prof)
		simS = append(simS, r.simH)
	}
	chart.Series = []report.Series{
		{Name: "Simulation (projected)", Values: simS},
		{Name: "Silicon Profiler", Values: profS},
		{Name: "Silicon", Values: silS},
	}

	tab := &report.Table{
		Title:   "Figure 1 extremes",
		Columns: []string{"Workload", "Silicon", "Profiler", "Simulation (projected)"},
	}
	for _, idx := range []int{0, len(rows) / 2, len(rows) - 1} {
		r := rows[idx]
		tab.AddRow(r.name, report.Hours(r.silicon), report.Hours(r.prof), report.Hours(r.simH))
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("max projected simulation: %s (%s)", report.Hours(rows[len(rows)-1].simH), rows[len(rows)-1].name))
	return chart, tab, nil
}

// Figure4 reproduces the per-group kernel composition after applying PKS
// to the ResNet-50 MLPerf workload: which named kernels land in which
// group, and how many instances each group holds.
func Figure4(s *Study) (*report.Table, error) {
	w := workload.Find("MLPerf/resnet50_64b_inf")
	sel, err := s.Selection(w)
	if err != nil {
		return nil, err
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Figure 4: per-group kernel composition after PKS on ResNet (K=%d)", sel.K),
		Columns: []string{"Group", "Rep kernel", "Population", "Top kernel names (count)"},
	}
	for gi, g := range sel.Groups {
		type nc struct {
			name string
			n    int
		}
		var ncs []nc
		for name, n := range g.NameCounts {
			ncs = append(ncs, nc{name, n})
		}
		sort.Slice(ncs, func(i, j int) bool {
			if ncs[i].n != ncs[j].n {
				return ncs[i].n > ncs[j].n
			}
			return ncs[i].name < ncs[j].name
		})
		names := ""
		for i, c := range ncs {
			if i >= 4 {
				names += fmt.Sprintf(" +%d more", len(ncs)-4)
				break
			}
			if i > 0 {
				names += ", "
			}
			names += fmt.Sprintf("%s(%d)", c.name, c.n)
		}
		tab.AddRow(fmt.Sprintf("Group %d", gi), g.Representative.Name, fmt.Sprint(g.Count()), names)
	}
	tab.Notes = append(tab.Notes, "compute-heavy and memory-heavy kernels cluster separately; same-named kernels with different launch dims may split")
	return tab, nil
}

// Figure5 reproduces the IPC/L2-miss/DRAM-utilization time series with
// PKP stopping points at s = 2.5, 0.25, and 0.025, for a regular workload
// (atax) and an irregular one (bfs).
func Figure5(s *Study) ([]*report.Chart, *report.Table, error) {
	dev := s.SelectionDevice()
	tab := &report.Table{
		Title:   "Figure 5: PKP stopping points",
		Columns: []string{"Workload", "s", "Stop cycle", "Full cycles", "Proj error %", "Speedup"},
	}
	type fig5Spec struct {
		label string
		wname string
		kid   int
	}
	specs := []fig5Spec{
		{"atax (regular)", "Polybench/atax", 0},
		{"bfs (irregular)", "Rodinia/bfs65536", 8},
	}
	type specOut struct {
		chart *report.Chart
		rows  [][]string
	}
	outs, err := parallel.Map(s.Cfg.Parallelism, specs, func(_ int, spec fig5Spec) (specOut, error) {
		w := workload.Find(spec.wname)
		k := w.Kernel(spec.kid)
		full, err := sim.New(dev).RunKernel(&k, sim.Options{TraceEvery: 250})
		if err != nil {
			return specOut{}, err
		}
		chart := &report.Chart{
			Title:  "Figure 5: " + spec.label + " — IPC / L2 miss / DRAM util vs time",
			YLabel: "IPC (normalized to peak); rates in [0,1]",
		}
		var ipc, l2, dr []float64
		peak := 1.0
		for _, smp := range full.Trace {
			if smp.IPC > peak {
				peak = smp.IPC
			}
		}
		for _, smp := range full.Trace {
			ipc = append(ipc, smp.IPC/peak)
			l2 = append(l2, smp.L2Miss)
			dr = append(dr, smp.DRAMUtil)
		}
		chart.Series = []report.Series{
			{Name: "IPC/peak", Values: ipc},
			{Name: "L2 miss rate", Values: l2},
			{Name: "DRAM util", Values: dr},
		}
		out := specOut{chart: chart}
		for _, th := range []float64{2.5, 0.25, 0.025} {
			p := pkp.New(pkp.Options{Threshold: th})
			res, err := sim.New(dev).RunKernel(&k, sim.Options{Controller: p})
			if err != nil {
				return specOut{}, err
			}
			proj := p.Projection(res)
			errPct := stats.AbsPctErr(float64(proj.Cycles), float64(full.Cycles))
			speedup := float64(full.Cycles) / float64(res.Cycles)
			out.rows = append(out.rows, []string{spec.label, report.F(th, 3), fmt.Sprint(res.Cycles),
				fmt.Sprint(full.Cycles), report.F(errPct, 1), report.F(speedup, 2) + "x"})
			chart.Notes = append(chart.Notes,
				fmt.Sprintf("s=%.3f stops at cycle %d (%.0f%% of kernel)", th, res.Cycles, 100*float64(res.Cycles)/float64(full.Cycles)))
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var charts []*report.Chart
	for _, out := range outs {
		charts = append(charts, out.chart)
		for _, row := range out.rows {
			tab.AddRow(row...)
		}
	}
	return charts, tab, nil
}

// Figure6 reproduces the simulation-time landscape under full simulation,
// PKS, and PKA across all 147 workloads, sorted by full-simulation time.
func Figure6(s *Study) (*report.Chart, *report.Table, error) {
	dev := s.SelectionDevice()
	type row struct {
		full, pks, pka float64 // projected hours
	}
	rows, err := parallel.Map(s.Cfg.Parallelism, s.Workloads(),
		func(_ int, w *workload.Workload) (row, error) {
			full := s.Cfg.SimHours(int64(float64(w.ApproxWarpInstructions(1<<62)) * dev.ISAScale))
			pksSim, err := s.Sampled(dev, w, false)
			if err != nil {
				return row{}, err
			}
			pkaSim, err := s.Sampled(dev, w, true)
			if err != nil {
				return row{}, err
			}
			return row{full, pksSim.SimHours, pkaSim.SimHours}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].full < rows[j].full })
	var fullS, pksS, pkaS []float64
	var worstFull, worstPKA float64
	for _, r := range rows {
		fullS = append(fullS, r.full)
		pksS = append(pksS, r.pks)
		pkaS = append(pkaS, r.pka)
		if r.full > worstFull {
			worstFull = r.full
		}
		if r.pka > worstPKA {
			worstPKA = r.pka
		}
	}
	chart := &report.Chart{
		Title:  "Figure 6: simulation time under full simulation, PKS, and PKA",
		YLabel: "projected hours",
		LogY:   true,
		Series: []report.Series{
			{Name: "Full Simulation", Values: fullS},
			{Name: "PKS", Values: pksS},
			{Name: "PKA", Values: pkaS},
		},
	}
	tab := &report.Table{
		Title:   "Figure 6 summary",
		Columns: []string{"Series", "Median", "Max"},
	}
	tab.AddRow("Full Simulation", report.Hours(stats.Median(fullS)), report.Hours(worstFull))
	tab.AddRow("PKS", report.Hours(stats.Median(pksS)), report.Hours(maxOf(pksS)))
	tab.AddRow("PKA", report.Hours(stats.Median(pkaS)), report.Hours(worstPKA))
	tab.Notes = append(tab.Notes, "every workload reduced below one week under PKA")
	return chart, tab, nil
}

// Figure7 reproduces the speedup-over-full-simulation comparison of PKA,
// TBPoint, and the first-N-instructions baseline on the workloads that
// complete in full simulation.
func Figure7(s *Study) (*report.Chart, *report.Table, error) {
	dev := s.SelectionDevice()
	type speedups struct {
		pka, tb, oneB float64
		ok            bool
	}
	perW, err := parallel.Map(s.Cfg.Parallelism, s.ComparableSet(),
		func(_ int, w *workload.Workload) (speedups, error) {
			full, err := s.Full(dev, w)
			if err != nil || full == nil {
				return speedups{}, err
			}
			pka, err := s.Sampled(dev, w, true)
			if err != nil {
				return speedups{}, err
			}
			tb, ok, err := s.TBPointSim(w)
			if err != nil {
				return speedups{}, err
			}
			oneB, err := s.FirstN(dev, w)
			if err != nil {
				return speedups{}, err
			}
			if pka.SimWarpInstrs == 0 || oneB.SimWarpInstrs == 0 || !ok || tb.SimWarpInstrs == 0 {
				return speedups{}, nil
			}
			return speedups{
				pka:  float64(full.SimWarpInstrs) / float64(pka.SimWarpInstrs),
				tb:   float64(full.SimWarpInstrs) / float64(tb.SimWarpInstrs),
				oneB: float64(full.SimWarpInstrs) / float64(oneB.SimWarpInstrs),
				ok:   true,
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	var pkaS, tbS, oneBS []float64
	for _, sp := range perW {
		if !sp.ok {
			continue
		}
		pkaS = append(pkaS, sp.pka)
		tbS = append(tbS, sp.tb)
		oneBS = append(oneBS, sp.oneB)
	}
	sort.Float64s(pkaS)
	sort.Float64s(tbS)
	sort.Float64s(oneBS)
	chart := &report.Chart{
		Title:  "Figure 7: simulation speedup over full simulation (sorted per series)",
		YLabel: "speedup (x)",
		LogY:   true,
		Series: []report.Series{
			{Name: fmt.Sprintf("PKA     (geomean %.2fx)", stats.GeoMean(pkaS)), Values: pkaS},
			{Name: fmt.Sprintf("TBPoint (geomean %.2fx)", stats.GeoMean(tbS)), Values: tbS},
			{Name: fmt.Sprintf("1B      (geomean %.2fx)", stats.GeoMean(oneBS)), Values: oneBS},
		},
	}
	tab := &report.Table{
		Title:   "Figure 7 geomean speedups",
		Columns: []string{"Method", "GeoMean speedup", "Apps"},
	}
	tab.AddRow("PKA", report.F(stats.GeoMean(pkaS), 2)+"x", fmt.Sprint(len(pkaS)))
	tab.AddRow("TBPoint", report.F(stats.GeoMean(tbS), 2)+"x", fmt.Sprint(len(tbS)))
	tab.AddRow("1B instructions", report.F(stats.GeoMean(oneBS), 2)+"x", fmt.Sprint(len(oneBS)))
	tab.Notes = append(tab.Notes, "paper: PKA 3.77x, TBPoint 1.76x, 1B 3.85x — PKA should deliver ~2x TBPoint's reduction")
	return chart, tab, nil
}

// Figure8 reproduces the absolute application cycle/IPC error versus
// silicon for full simulation, 1B, PKA, and TBPoint on the same set.
func Figure8(s *Study) (*report.Chart, *report.Table, error) {
	dev := s.SelectionDevice()
	type errRow struct {
		full, oneB, pka, tb float64
		ok                  bool
	}
	perW, err := parallel.Map(s.Cfg.Parallelism, s.ComparableSet(),
		func(_ int, w *workload.Workload) (errRow, error) {
			full, err := s.Full(dev, w)
			if err != nil || full == nil {
				return errRow{}, err
			}
			sil, err := s.Silicon(dev, w)
			if err != nil {
				return errRow{}, err
			}
			pka, err := s.Sampled(dev, w, true)
			if err != nil {
				return errRow{}, err
			}
			tb, ok, err := s.TBPointSim(w)
			if err != nil {
				return errRow{}, err
			}
			if !ok {
				return errRow{}, nil
			}
			oneB, err := s.FirstN(dev, w)
			if err != nil {
				return errRow{}, err
			}
			ref := float64(sil.Cycles)
			return errRow{
				full: stats.AbsPctErr(float64(full.ProjCycles), ref),
				oneB: stats.AbsPctErr(float64(oneB.ProjCycles), ref),
				pka:  pka.ErrorPct,
				tb:   stats.AbsPctErr(float64(tb.ProjCycles), ref),
				ok:   true,
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	var fullE, oneBE, pkaE, tbE []float64
	for _, r := range perW {
		if !r.ok {
			continue
		}
		fullE = append(fullE, r.full)
		oneBE = append(oneBE, r.oneB)
		pkaE = append(pkaE, r.pka)
		tbE = append(tbE, r.tb)
	}
	// Sort all series by the full-simulation error, the paper's x order.
	idx := make([]int, len(fullE))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fullE[idx[a]] < fullE[idx[b]] })
	reorder := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, j := range idx {
			out[i] = xs[j]
		}
		return out
	}
	fullE, oneBE, pkaE, tbE = reorder(fullE), reorder(oneBE), reorder(pkaE), reorder(tbE)

	chart := &report.Chart{
		Title:  "Figure 8: absolute % cycle error vs silicon (sorted by full-sim error)",
		YLabel: "absolute % error",
		Series: []report.Series{
			{Name: fmt.Sprintf("FullSim (ME %.1f%%)", stats.Mean(fullE)), Values: fullE},
			{Name: fmt.Sprintf("1B      (ME %.1f%%)", stats.Mean(oneBE)), Values: oneBE},
			{Name: fmt.Sprintf("PKA     (ME %.1f%%)", stats.Mean(pkaE)), Values: pkaE},
			{Name: fmt.Sprintf("TBPoint (ME %.1f%%)", stats.Mean(tbE)), Values: tbE},
		},
	}
	tab := &report.Table{
		Title:   "Figure 8 mean absolute errors",
		Columns: []string{"Method", "Mean error %"},
	}
	tab.AddRow("FullSim", report.F(stats.Mean(fullE), 2))
	tab.AddRow("1B", report.F(stats.Mean(oneBE), 2))
	tab.AddRow("PKA", report.F(stats.Mean(pkaE), 2))
	tab.AddRow("TBPoint", report.F(stats.Mean(tbE), 2))
	tab.Notes = append(tab.Notes, "paper: FullSim 26.7%, 1B 144.1%, PKA 31.1%, TBPoint 27.2% — 1B should be the outlier")
	return chart, tab, nil
}

// Figure9 reproduces the V100-over-RTX2060 relative speedup case study:
// silicon, full simulation, 1B, and PKA must rank architectures alike.
// MLPerf workloads are excluded (the 2060 lacks the memory), as are
// quirked workloads.
func Figure9(s *Study) (*report.Chart, *report.Table, error) {
	return relativeStudy(s, gpu.TuringRTX2060(),
		"Figure 9: V100 speedup over RTX 2060",
		"paper geomeans: silicon 2.29x, full sim 1.87x, 1B 1.72x, PKA 1.88x",
		true)
}

// Figure10 reproduces the 80-vs-40-SM MPS case study on the V100,
// including the MLPerf workloads (for which only silicon/PKA/1B exist).
func Figure10(s *Study) (*report.Chart, *report.Table, error) {
	return relativeStudy(s, s.SelectionDevice().WithSMs(40),
		"Figure 10: V100 80-SM speedup over 40-SM",
		"paper geomeans: silicon 1.24x, full sim 1.20x, 1B 1.32x, PKA 1.22x",
		false)
}

// relativeStudy measures per-workload speedups of the base device over the
// alternative device under each methodology.
func relativeStudy(s *Study, alt gpu.Device, title, note string, excludeMLPerf bool) (*report.Chart, *report.Table, error) {
	base := s.SelectionDevice()
	var eligible []*workload.Workload
	for _, w := range s.Workloads() {
		if w.Quirk != "" {
			continue
		}
		if excludeMLPerf && w.Suite == "MLPerf" {
			continue
		}
		eligible = append(eligible, w)
	}
	type relRow struct {
		sil, pka, oneB, full float64 // speedups; oneB/full zero when absent
		comparable           bool    // full sim feasible on both devices
	}
	perW, err := parallel.Map(s.Cfg.Parallelism, eligible,
		func(_ int, w *workload.Workload) (relRow, error) {
			silBase, err := s.Silicon(base, w)
			if err != nil {
				return relRow{}, err
			}
			silAlt, err := s.Silicon(alt, w)
			if err != nil {
				return relRow{}, err
			}
			secBase := float64(silBase.Cycles) / (float64(base.CoreClockMHz) * 1e6)
			secAlt := float64(silAlt.Cycles) / (float64(alt.CoreClockMHz) * 1e6)
			r := relRow{sil: secAlt / secBase}

			pkaBase, err := s.Sampled(base, w, true)
			if err != nil {
				return relRow{}, err
			}
			pkaAlt, err := s.Sampled(alt, w, true)
			if err != nil {
				return relRow{}, err
			}
			r.pka = cyclesToSec(pkaAlt.ProjCycles, alt) / cyclesToSec(pkaBase.ProjCycles, base)

			if w.Suite != "MLPerf" {
				oneBBase, err := s.FirstN(base, w)
				if err != nil {
					return relRow{}, err
				}
				oneBAlt, err := s.FirstN(alt, w)
				if err != nil {
					return relRow{}, err
				}
				r.oneB = cyclesToSec(oneBAlt.ProjCycles, alt) / cyclesToSec(oneBBase.ProjCycles, base)
			}

			fullBase, err := s.Full(base, w)
			if err != nil {
				return relRow{}, err
			}
			fullAlt, err := s.Full(alt, w)
			if err != nil {
				return relRow{}, err
			}
			if fullBase != nil && fullAlt != nil {
				r.comparable = true
				r.full = cyclesToSec(fullAlt.ProjCycles, alt) / cyclesToSec(fullBase.ProjCycles, base)
			}
			return r, nil
		})
	if err != nil {
		return nil, nil, err
	}

	var silS, fullS, oneBS, pkaS []float64
	var silAll, oneBAll, pkaAll []float64
	for _, r := range perW {
		silAll = append(silAll, r.sil)
		pkaAll = append(pkaAll, r.pka)
		if r.oneB > 0 {
			oneBAll = append(oneBAll, r.oneB)
		}
		if !r.comparable {
			continue
		}
		silS = append(silS, r.sil)
		fullS = append(fullS, r.full)
		if r.oneB > 0 {
			oneBS = append(oneBS, r.oneB)
		}
		pkaS = append(pkaS, r.pka)
	}

	sortAll := func(xs []float64) []float64 { sort.Float64s(xs); return xs }
	chart := &report.Chart{
		Title:  title + " (full-sim-comparable apps, sorted per series)",
		YLabel: "speedup (x)",
		Series: []report.Series{
			{Name: fmt.Sprintf("Silicon  (geomean %.2fx)", stats.GeoMean(silS)), Values: sortAll(append([]float64(nil), silS...))},
			{Name: fmt.Sprintf("Full Sim (geomean %.2fx)", stats.GeoMean(fullS)), Values: sortAll(append([]float64(nil), fullS...))},
			{Name: fmt.Sprintf("1B       (geomean %.2fx)", stats.GeoMean(oneBS)), Values: sortAll(append([]float64(nil), oneBS...))},
			{Name: fmt.Sprintf("PKA      (geomean %.2fx)", stats.GeoMean(pkaS)), Values: sortAll(append([]float64(nil), pkaS...))},
		},
		Notes: []string{note},
	}
	fullMAE := maeVs(fullS, silS)
	oneBMAE := maeVs(oneBS, silS[:minLen(len(oneBS), len(silS))])
	pkaMAE := maeVs(pkaS, silS)
	tab := &report.Table{
		Title:   title + " — geomeans",
		Columns: []string{"Method", "GeoMean (comparable)", "GeoMean (all)", "MAE wrt silicon %"},
	}
	tab.AddRow("Silicon", report.F(stats.GeoMean(silS), 2)+"x", report.F(stats.GeoMean(silAll), 2)+"x", "-")
	tab.AddRow("Full Simulation", report.F(stats.GeoMean(fullS), 2)+"x", "*", report.F(fullMAE, 2))
	tab.AddRow("1B", report.F(stats.GeoMean(oneBS), 2)+"x", report.F(stats.GeoMean(oneBAll), 2)+"x", report.F(oneBMAE, 2))
	tab.AddRow("PKA", report.F(stats.GeoMean(pkaS), 2)+"x", report.F(stats.GeoMean(pkaAll), 2)+"x", report.F(pkaMAE, 2))
	tab.Notes = append(tab.Notes, note)
	return chart, tab, nil
}

func cyclesToSec(cycles int64, dev gpu.Device) float64 {
	return float64(cycles) / (float64(dev.CoreClockMHz) * 1e6)
}

// maeVs returns the mean absolute percentage deviation of xs from refs,
// element-wise over the common prefix.
func maeVs(xs, refs []float64) float64 {
	n := minLen(len(xs), len(refs))
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += stats.AbsPctErr(xs[i], refs[i])
	}
	return sum / float64(n)
}

func minLen(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
