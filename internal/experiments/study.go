// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) from the reproduced system: Figure 1 (time
// landscape), Table 3 (selection examples), Figure 4 (ResNet group
// composition), Figure 5 (PKP stopping points), Figure 6 (simulation
// times), Figures 7-8 (speedup and error versus TBPoint and 1B), Table 4
// (the full per-application results), and Figures 9-10 (relative-accuracy
// case studies), plus the ablations DESIGN.md calls out.
//
// A Study memoizes every expensive artifact — silicon walks, PKS
// selections, full simulations, sampled simulations, baselines — keyed by
// device and workload in per-key singleflight caches, so the figures share
// work when generated together and generators can fan per-workload
// computation out across a bounded worker pool (Cfg.Parallelism; see
// DESIGN.md's concurrency-model section) without ever computing an
// artifact twice. Each per-workload pipeline stays single-threaded and
// deterministic, so parallel and serial runs render byte-identical output.
package experiments

import (
	"errors"
	"sync"

	"pka/internal/artifact"
	"pka/internal/core"
	"pka/internal/gpu"
	"pka/internal/obs"
	"pka/internal/parallel"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/silicon"
	"pka/internal/stats"
	"pka/internal/tbpoint"
	"pka/internal/workload"
)

// Study owns the memoized state behind the experiment generators. All
// accessors are safe for concurrent use: each artifact kind lives in a
// singleflight cache, so concurrent callers asking for the same
// (device, workload) artifact block on one computation instead of
// duplicating it.
type Study struct {
	// Cfg is the base configuration; Cfg.Device is the selection machine
	// (Volta, as in the paper). Cfg.Parallelism bounds the generators'
	// fan-out (0 = GOMAXPROCS, 1 = serial).
	Cfg core.Config

	mu        sync.Mutex
	workloads []*workload.Workload

	// execOnce builds the shared kernel-task executor on first use: one
	// global bounded scheduler (width Cfg.Parallelism) plus the in-memory
	// kernel-outcome cache, layered over the artifact store when one was
	// installed with SetArtifactStore.
	execOnce sync.Once
	ex       *sampling.Exec
	store    *artifact.Store
	remote   sampling.RemoteTier
	shard    sampling.ShardTier

	selections parallel.Cache[string, *pks.Selection]
	crossGen   parallel.Cache[string, pks.CrossGenResult]
	siliconRes parallel.Cache[string, silicon.AppResult]
	fullSims   parallel.Cache[string, *sampling.Result] // nil value = infeasible
	sampled    parallel.Cache[string, core.SampledSim]
	firstNs    parallel.Cache[string, *sampling.Result]
	tbSels     parallel.Cache[string, *tbpoint.Selection] // nil value = too large
	tbSims     parallel.Cache[string, tbSimEntry]
}

// tbSimEntry carries TBPointSim's (result, feasible) pair through the
// cache.
type tbSimEntry struct {
	res tbpoint.SimResult
	ok  bool
}

// New returns a Study with the paper's configuration: selection on a
// Volta V100, 5% PKS target, s = 0.25, n = 3000.
func New() *Study {
	return &Study{Cfg: core.Config{Device: gpu.VoltaV100()}}
}

// Workers returns the study's effective fan-out width.
func (s *Study) Workers() int { return parallel.Workers(s.Cfg.Parallelism) }

// Workloads returns the 147-workload study set (cached).
func (s *Study) Workloads() []*workload.Workload {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workloads == nil {
		s.workloads = workload.All()
	}
	return s.workloads
}

// SetWorkloads restricts the study to an explicit workload list — used by
// tests and quick-look runs; the full suite defaults to all 147.
func (s *Study) SetWorkloads(ws []*workload.Workload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workloads = ws
}

// SelectionDevice returns the device selections are made on.
func (s *Study) SelectionDevice() gpu.Device { return s.Cfg.Device }

// SetArtifactStore layers a persistent content-addressed store under the
// kernel-outcome cache. Call it before the first simulation (the executor
// is frozen on first use); a nil store is a no-op.
func (s *Study) SetArtifactStore(st *artifact.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = st
}

// SetRemote installs a remote worker tier between the disk cache and local
// simulation in the study's executor ladder. Like SetArtifactStore, call
// it before the first simulation; the tier never changes results, only
// where cycles are spent. A nil tier is a no-op.
func (s *Study) SetRemote(r sampling.RemoteTier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.remote = r
}

// SetShard installs the sharded fleet-cache tier between the disk cache
// and the remote workers in the study's executor ladder. Like SetRemote,
// call it before the first simulation; peer cache reads never change
// results, only where the bytes come from. A nil tier is a no-op.
func (s *Study) SetShard(t sampling.ShardTier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shard = t
}

// Exec returns the study's shared kernel-task executor, building it on
// first call: kernel simulations from every generator land on one bounded
// scheduler (longest task first) and share one outcome cache.
func (s *Study) Exec() *sampling.Exec {
	s.execOnce.Do(func() {
		s.mu.Lock()
		st, r, sh := s.store, s.remote, s.shard
		s.mu.Unlock()
		s.ex = sampling.NewExec(parallel.NewScheduler(s.Cfg.Parallelism), st)
		if r != nil {
			s.ex.SetRemote(r)
		}
		if sh != nil {
			s.ex.SetShard(sh)
		}
	})
	return s.ex
}

// CacheStats reports hit/miss counters for every cache family the study
// maintains — the per-artifact singleflight caches, the kernel-outcome
// memory cache, and (when configured) the on-disk artifact store. The map
// is shaped for obs.RegisterCacheStats.
func (s *Study) CacheStats() map[string]obs.CacheCounts {
	out := map[string]obs.CacheCounts{}
	add := func(family string, stats func() (hits, misses uint64)) {
		h, m := stats()
		out[family] = obs.CacheCounts{Hits: h, Misses: m}
	}
	add("selections", s.selections.Stats)
	add("crossgen", s.crossGen.Stats)
	add("silicon", s.siliconRes.Stats)
	add("full_sims", s.fullSims.Stats)
	add("sampled", s.sampled.Stats)
	add("first_ns", s.firstNs.Stats)
	add("tbpoint_selections", s.tbSels.Stats)
	add("tbpoint_sims", s.tbSims.Stats)
	ex := s.Exec()
	add("kernel_mem", ex.MemStats)
	if st := ex.Store(); st != nil {
		a := st.Stats()
		out["artifact"] = obs.CacheCounts{Hits: a.Hits, Misses: a.Misses, Evictions: a.Evictions, Corrupt: a.Corrupt}
	}
	s.mu.Lock()
	sh := s.shard
	s.mu.Unlock()
	if c, ok := sh.(interface{ CacheCounts() obs.CacheCounts }); ok {
		out["shard"] = c.CacheCounts()
	}
	return out
}

func key(dev gpu.Device, w *workload.Workload) string { return dev.Name + "|" + w.FullName() }

// Selection returns the (cached) Volta PKS selection for the workload.
func (s *Study) Selection(w *workload.Workload) (*pks.Selection, error) {
	return s.selections.Do(w.FullName(), func() (*pks.Selection, error) {
		sp := s.Cfg.Obs.StartSpan("pks-select", w.FullName())
		defer sp.End()
		return pks.Select(s.Cfg.Device, w, s.Cfg.PKSOptions())
	})
}

// CrossGen evaluates the Volta selection on another device's silicon.
func (s *Study) CrossGen(dev gpu.Device, w *workload.Workload) (pks.CrossGenResult, error) {
	return s.crossGen.Do(key(dev, w), func() (pks.CrossGenResult, error) {
		sel, err := s.Selection(w)
		if err != nil {
			return pks.CrossGenResult{}, err
		}
		return pks.ProjectOnDevice(dev, w, sel)
	})
}

// Silicon returns the (cached) silicon ground truth on the device.
func (s *Study) Silicon(dev gpu.Device, w *workload.Workload) (silicon.AppResult, error) {
	return s.siliconRes.Do(key(dev, w), func() (silicon.AppResult, error) {
		sp := s.Cfg.Obs.StartSpan("silicon", key(dev, w))
		defer sp.End()
		return sampling.SiliconTotal(dev, w)
	})
}

// Full returns the (cached) full-simulation result on the device, or nil
// when the workload is infeasible to simulate fully.
func (s *Study) Full(dev gpu.Device, w *workload.Workload) (*sampling.Result, error) {
	return s.fullSims.Do(key(dev, w), func() (*sampling.Result, error) {
		sp := s.Cfg.Obs.StartSpan("full-sim", key(dev, w))
		defer sp.End()
		r, err := s.Exec().FullSim(dev, w, s.Cfg.FullSimBudget)
		if err != nil && !errors.Is(err, sampling.ErrInfeasible) {
			return nil, err
		}
		return r, nil // nil when infeasible
	})
}

// Sampled runs (cached) PKS- or PKA-sampled simulation on the device using
// the Volta selection, with the error computed against that device's
// silicon.
func (s *Study) Sampled(dev gpu.Device, w *workload.Workload, usePKP bool) (core.SampledSim, error) {
	k := key(dev, w)
	if usePKP {
		k += "|pkp"
	}
	return s.sampled.Do(k, func() (core.SampledSim, error) {
		sel, err := s.Selection(w)
		if err != nil {
			return core.SampledSim{}, err
		}
		cfg := s.Cfg
		cfg.Device = dev
		cfg.Exec = s.Exec()
		r, err := core.RunSampled(cfg, w, sel, usePKP)
		if err != nil {
			return core.SampledSim{}, err
		}
		sil, err := s.Silicon(dev, w)
		if err != nil {
			return core.SampledSim{}, err
		}
		r.ErrorPct = stats.AbsPctErr(float64(r.ProjCycles), float64(sil.Cycles))
		full, err := s.Full(dev, w)
		if err != nil {
			return core.SampledSim{}, err
		}
		fullWork := int64(float64(w.ApproxWarpInstructions(1<<62)) * dev.ISAScale)
		if full != nil {
			fullWork = full.SimWarpInstrs
		}
		if r.SimWarpInstrs > 0 {
			r.SpeedupVsFull = float64(fullWork) / float64(r.SimWarpInstrs)
		}
		return r, nil
	})
}

// FirstN runs (cached) the first-N-instructions baseline on the device.
func (s *Study) FirstN(dev gpu.Device, w *workload.Workload) (*sampling.Result, error) {
	return s.firstNs.Do(key(dev, w), func() (*sampling.Result, error) {
		sp := s.Cfg.Obs.StartSpan("first-n", key(dev, w))
		defer sp.End()
		return sampling.FirstN(dev, w, 0)
	})
}

// TBPoint returns the (cached) TBPoint selection on the Volta, or nil when
// the workload exceeds the baseline's scaling wall.
func (s *Study) TBPoint(w *workload.Workload) (*tbpoint.Selection, error) {
	return s.tbSels.Do(w.FullName(), func() (*tbpoint.Selection, error) {
		sp := s.Cfg.Obs.StartSpan("tbpoint-select", w.FullName())
		defer sp.End()
		r, err := tbpoint.Select(s.Cfg.Device, w, tbpoint.Options{})
		if err != nil && !errors.Is(err, tbpoint.ErrTooLarge) {
			return nil, err
		}
		return r, nil
	})
}

// TBPointSim returns the (cached) simulation of the TBPoint selection.
func (s *Study) TBPointSim(w *workload.Workload) (tbpoint.SimResult, bool, error) {
	e, err := s.tbSims.Do(w.FullName(), func() (tbSimEntry, error) {
		sel, err := s.TBPoint(w)
		if err != nil {
			return tbSimEntry{}, err
		}
		if sel == nil {
			return tbSimEntry{}, nil
		}
		sp := s.Cfg.Obs.StartSpan("tbpoint-sim", w.FullName())
		defer sp.End()
		r, err := tbpoint.Simulate(s.Cfg.Device, w, sel, s.Cfg.KernelCapCycles)
		if err != nil {
			return tbSimEntry{}, err
		}
		return tbSimEntry{res: r, ok: true}, nil
	})
	if err != nil {
		return tbpoint.SimResult{}, false, err
	}
	return e.res, e.ok, nil
}

// ComparableSet returns the workloads eligible for the Figure 7/8
// comparisons: full simulation feasible on the Volta, no run-to-run kernel
// mismatch quirks, and within TBPoint's scaling wall.
func (s *Study) ComparableSet() []*workload.Workload {
	budget := s.Cfg.FullSimBudget
	if budget <= 0 {
		budget = sampling.DefaultFullSimBudget
	}
	var out []*workload.Workload
	for _, w := range s.Workloads() {
		if w.Quirk != "" || w.Suite == "MLPerf" {
			continue
		}
		if w.ApproxWarpInstructions(budget) > budget {
			continue
		}
		out = append(out, w)
	}
	return out
}
