// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) from the reproduced system: Figure 1 (time
// landscape), Table 3 (selection examples), Figure 4 (ResNet group
// composition), Figure 5 (PKP stopping points), Figure 6 (simulation
// times), Figures 7-8 (speedup and error versus TBPoint and 1B), Table 4
// (the full per-application results), and Figures 9-10 (relative-accuracy
// case studies), plus the ablations DESIGN.md calls out.
//
// A Study memoizes every expensive artifact — silicon walks, PKS
// selections, full simulations, sampled simulations, baselines — keyed by
// device and workload, so the figures share work when generated together
// (the whole suite is a single-core workload; see DESIGN.md for the
// compute-budget discussion).
package experiments

import (
	"errors"
	"sync"

	"pka/internal/core"
	"pka/internal/gpu"
	"pka/internal/pks"
	"pka/internal/sampling"
	"pka/internal/silicon"
	"pka/internal/stats"
	"pka/internal/tbpoint"
	"pka/internal/workload"
)

// Study owns the memoized state behind the experiment generators.
type Study struct {
	// Cfg is the base configuration; Cfg.Device is the selection machine
	// (Volta, as in the paper).
	Cfg core.Config

	mu         sync.Mutex
	workloads  []*workload.Workload
	selections map[string]*pks.Selection
	crossGen   map[string]pks.CrossGenResult
	siliconRes map[string]silicon.AppResult
	fullSims   map[string]*sampling.Result // nil value = infeasible
	sampled    map[string]core.SampledSim
	firstNs    map[string]*sampling.Result
	tbSels     map[string]*tbpoint.Selection // nil value = too large
	tbSims     map[string]tbpoint.SimResult
}

// New returns a Study with the paper's configuration: selection on a
// Volta V100, 5% PKS target, s = 0.25, n = 3000.
func New() *Study {
	return &Study{
		Cfg:        core.Config{Device: gpu.VoltaV100()},
		selections: map[string]*pks.Selection{},
		crossGen:   map[string]pks.CrossGenResult{},
		siliconRes: map[string]silicon.AppResult{},
		fullSims:   map[string]*sampling.Result{},
		sampled:    map[string]core.SampledSim{},
		firstNs:    map[string]*sampling.Result{},
		tbSels:     map[string]*tbpoint.Selection{},
		tbSims:     map[string]tbpoint.SimResult{},
	}
}

// Workloads returns the 147-workload study set (cached).
func (s *Study) Workloads() []*workload.Workload {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workloads == nil {
		s.workloads = workload.All()
	}
	return s.workloads
}

// SetWorkloads restricts the study to an explicit workload list — used by
// tests and quick-look runs; the full suite defaults to all 147.
func (s *Study) SetWorkloads(ws []*workload.Workload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workloads = ws
}

// SelectionDevice returns the device selections are made on.
func (s *Study) SelectionDevice() gpu.Device { return s.Cfg.Device }

func key(dev gpu.Device, w *workload.Workload) string { return dev.Name + "|" + w.FullName() }

// Selection returns the (cached) Volta PKS selection for the workload.
func (s *Study) Selection(w *workload.Workload) (*pks.Selection, error) {
	s.mu.Lock()
	if sel, ok := s.selections[w.FullName()]; ok {
		s.mu.Unlock()
		return sel, nil
	}
	s.mu.Unlock()
	sel, err := pks.Select(s.Cfg.Device, w, s.Cfg.PKS)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.selections[w.FullName()] = sel
	s.mu.Unlock()
	return sel, nil
}

// CrossGen evaluates the Volta selection on another device's silicon.
func (s *Study) CrossGen(dev gpu.Device, w *workload.Workload) (pks.CrossGenResult, error) {
	k := key(dev, w)
	s.mu.Lock()
	if r, ok := s.crossGen[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	sel, err := s.Selection(w)
	if err != nil {
		return pks.CrossGenResult{}, err
	}
	r, err := pks.ProjectOnDevice(dev, w, sel)
	if err != nil {
		return pks.CrossGenResult{}, err
	}
	s.mu.Lock()
	s.crossGen[k] = r
	s.mu.Unlock()
	return r, nil
}

// Silicon returns the (cached) silicon ground truth on the device.
func (s *Study) Silicon(dev gpu.Device, w *workload.Workload) (silicon.AppResult, error) {
	k := key(dev, w)
	s.mu.Lock()
	if r, ok := s.siliconRes[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := sampling.SiliconTotal(dev, w)
	if err != nil {
		return silicon.AppResult{}, err
	}
	s.mu.Lock()
	s.siliconRes[k] = r
	s.mu.Unlock()
	return r, nil
}

// Full returns the (cached) full-simulation result on the device, or nil
// when the workload is infeasible to simulate fully.
func (s *Study) Full(dev gpu.Device, w *workload.Workload) (*sampling.Result, error) {
	k := key(dev, w)
	s.mu.Lock()
	if r, ok := s.fullSims[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := sampling.FullSim(dev, w, s.Cfg.FullSimBudget)
	if err != nil && !errors.Is(err, sampling.ErrInfeasible) {
		return nil, err
	}
	s.mu.Lock()
	s.fullSims[k] = r // nil when infeasible
	s.mu.Unlock()
	return r, nil
}

// Sampled runs (cached) PKS- or PKA-sampled simulation on the device using
// the Volta selection, with the error computed against that device's
// silicon.
func (s *Study) Sampled(dev gpu.Device, w *workload.Workload, usePKP bool) (core.SampledSim, error) {
	k := key(dev, w)
	if usePKP {
		k += "|pkp"
	}
	s.mu.Lock()
	if r, ok := s.sampled[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	sel, err := s.Selection(w)
	if err != nil {
		return core.SampledSim{}, err
	}
	cfg := s.Cfg
	cfg.Device = dev
	r, err := core.RunSampled(cfg, w, sel, usePKP)
	if err != nil {
		return core.SampledSim{}, err
	}
	sil, err := s.Silicon(dev, w)
	if err != nil {
		return core.SampledSim{}, err
	}
	r.ErrorPct = stats.AbsPctErr(float64(r.ProjCycles), float64(sil.Cycles))
	full, err := s.Full(dev, w)
	if err != nil {
		return core.SampledSim{}, err
	}
	fullWork := int64(float64(w.ApproxWarpInstructions(1<<62)) * dev.ISAScale)
	if full != nil {
		fullWork = full.SimWarpInstrs
	}
	if r.SimWarpInstrs > 0 {
		r.SpeedupVsFull = float64(fullWork) / float64(r.SimWarpInstrs)
	}
	s.mu.Lock()
	s.sampled[k] = r
	s.mu.Unlock()
	return r, nil
}

// FirstN runs (cached) the first-N-instructions baseline on the device.
func (s *Study) FirstN(dev gpu.Device, w *workload.Workload) (*sampling.Result, error) {
	k := key(dev, w)
	s.mu.Lock()
	if r, ok := s.firstNs[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := sampling.FirstN(dev, w, 0)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.firstNs[k] = r
	s.mu.Unlock()
	return r, nil
}

// TBPoint returns the (cached) TBPoint selection on the Volta, or nil when
// the workload exceeds the baseline's scaling wall.
func (s *Study) TBPoint(w *workload.Workload) (*tbpoint.Selection, error) {
	s.mu.Lock()
	if r, ok := s.tbSels[w.FullName()]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := tbpoint.Select(s.Cfg.Device, w, tbpoint.Options{})
	if err != nil && !errors.Is(err, tbpoint.ErrTooLarge) {
		return nil, err
	}
	s.mu.Lock()
	s.tbSels[w.FullName()] = r
	s.mu.Unlock()
	return r, nil
}

// TBPointSim returns the (cached) simulation of the TBPoint selection.
func (s *Study) TBPointSim(w *workload.Workload) (tbpoint.SimResult, bool, error) {
	s.mu.Lock()
	if r, ok := s.tbSims[w.FullName()]; ok {
		s.mu.Unlock()
		return r, true, nil
	}
	s.mu.Unlock()
	sel, err := s.TBPoint(w)
	if err != nil {
		return tbpoint.SimResult{}, false, err
	}
	if sel == nil {
		return tbpoint.SimResult{}, false, nil
	}
	r, err := tbpoint.Simulate(s.Cfg.Device, w, sel, s.Cfg.KernelCapCycles)
	if err != nil {
		return tbpoint.SimResult{}, false, err
	}
	s.mu.Lock()
	s.tbSims[w.FullName()] = r
	s.mu.Unlock()
	return r, true, nil
}

// ComparableSet returns the workloads eligible for the Figure 7/8
// comparisons: full simulation feasible on the Volta, no run-to-run kernel
// mismatch quirks, and within TBPoint's scaling wall.
func (s *Study) ComparableSet() []*workload.Workload {
	budget := s.Cfg.FullSimBudget
	if budget <= 0 {
		budget = sampling.DefaultFullSimBudget
	}
	var out []*workload.Workload
	for _, w := range s.Workloads() {
		if w.Quirk != "" || w.Suite == "MLPerf" {
			continue
		}
		if w.ApproxWarpInstructions(budget) > budget {
			continue
		}
		out = append(out, w)
	}
	return out
}
