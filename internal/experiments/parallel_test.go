package experiments

import (
	"strings"
	"sync"
	"testing"

	"pka/internal/gpu"
	"pka/internal/workload"
)

// tinyStudy is the cheapest structurally interesting study subset: two
// Rodinia apps (regular + irregular), a Polybench stencil, and a Cutlass
// GEMM so the Table-4 sub-family aggregation path runs.
func tinyStudy(parallelism int) *Study {
	s := New()
	s.Cfg.Parallelism = parallelism
	var ws []*workload.Workload
	for _, name := range []string{
		"Rodinia/gauss_208",
		"Rodinia/bfs65536",
		"Polybench/fdtd2d",
		"Cutlass/128x128x512_sgemm",
	} {
		w := workload.Find(name)
		if w == nil {
			panic("missing workload " + name)
		}
		ws = append(ws, w)
	}
	s.SetWorkloads(ws)
	return s
}

// TestStudySingleflight is the memoization-race regression test: under 64
// concurrent callers asking for the same artifact, the compute function
// must run exactly once. The pre-singleflight Study dropped its lock
// between the cache miss and the compute, so every caller that missed
// recomputed the selection redundantly.
func TestStudySingleflight(t *testing.T) {
	s := tinyStudy(0)
	w := workload.Find("Polybench/fdtd2d")

	var wg sync.WaitGroup
	start := make(chan struct{})
	sels := make([]interface{}, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sel, err := s.Selection(w)
			if err != nil {
				t.Error(err)
			}
			sels[i] = sel
		}(i)
	}
	close(start)
	wg.Wait()

	if _, misses := s.selections.Stats(); misses != 1 {
		t.Errorf("%d selection computes under 64 concurrent callers, want exactly 1", misses)
	}
	for i := 1; i < 64; i++ {
		if sels[i] != sels[0] {
			t.Fatalf("caller %d received a different selection pointer", i)
		}
	}

	// Same guarantee for a device-keyed artifact.
	dev := gpu.VoltaV100()
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Silicon(dev, w); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if _, misses := s.siliconRes.Stats(); misses != 1 {
		t.Errorf("%d silicon computes for one (device, workload) key, want 1", misses)
	}
}

// TestStudyConcurrentAccessors hammers a shared Study from 64 goroutines
// mixing accessor kinds, devices, and workloads — the -race harness for
// the whole memoization layer. Each artifact must still compute exactly
// once per key.
func TestStudyConcurrentAccessors(t *testing.T) {
	s := tinyStudy(0)
	ws := s.Workloads()[:2] // gauss_208 + bfs65536
	volta, turing := gpu.VoltaV100(), gpu.TuringRTX2060()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			w := ws[i%len(ws)]
			switch i % 4 {
			case 0:
				if _, err := s.Selection(w); err != nil {
					t.Error(err)
				}
			case 1:
				if _, err := s.Silicon(volta, w); err != nil {
					t.Error(err)
				}
			case 2:
				if _, err := s.CrossGen(turing, w); err != nil {
					t.Error(err)
				}
			case 3:
				if _, err := s.TBPoint(w); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if _, misses := s.selections.Stats(); misses > uint64(len(ws)) {
		t.Errorf("selection computes = %d, want <= %d (one per workload)", misses, len(ws))
	}
	if _, misses := s.crossGen.Stats(); misses > uint64(len(ws)) {
		t.Errorf("crossgen computes = %d, want <= %d", misses, len(ws))
	}
}

// TestParallelDeterminism is the golden determinism test: generating
// Table 4 and Figures 6-8 serially (Parallelism=1) and with
// Parallelism=8 must render byte-identical output, because Map preserves
// row order and every per-workload pipeline is self-contained.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the artifact pipeline twice")
	}
	render := func(s *Study) string {
		var sb strings.Builder
		tab4, err := Table4(s)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(tab4.String())
		c6, t6, err := Figure6(s)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(c6.String())
		sb.WriteString(t6.String())
		c7, t7, err := Figure7(s)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(c7.String())
		sb.WriteString(t7.String())
		c8, t8, err := Figure8(s)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(c8.String())
		sb.WriteString(t8.String())
		return sb.String()
	}

	serial := render(tinyStudy(1))
	par := render(tinyStudy(8))
	if serial != par {
		t.Fatalf("parallel output diverges from serial output:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
	if !strings.Contains(serial, "gauss_208") || !strings.Contains(serial, "Cutlass sgemm") {
		t.Errorf("rendered artifacts incomplete:\n%s", serial)
	}
}

// TestStudyParallelismKnob checks the worker-width plumbing.
func TestStudyParallelismKnob(t *testing.T) {
	s := New()
	if s.Workers() < 1 {
		t.Error("default Workers must be at least 1")
	}
	s.Cfg.Parallelism = 5
	if s.Workers() != 5 {
		t.Errorf("Workers = %d, want 5", s.Workers())
	}
}
