package experiments

import (
	"strings"
	"testing"

	"pka/internal/obs"
	"pka/internal/parallel"
)

// TestTelemetryIsObserveOnly pins the obs layer's core contract: running
// the study with every telemetry facet enabled (metrics, tracing, audit,
// pool observer) must render byte-identical artifacts to a run with
// telemetry disabled — nothing in obs may feed back into the pipeline.
func TestTelemetryIsObserveOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the artifact pipeline twice")
	}
	render := func(s *Study) string {
		tab4, err := Table4(s)
		if err != nil {
			t.Fatal(err)
		}
		return tab4.String()
	}

	plain := render(tinyStudy(4))

	o := obs.NewObserver()
	parallel.SetObserver(o.PoolMetrics())
	defer parallel.SetObserver(nil)
	s := tinyStudy(4)
	s.Cfg.Obs = o
	observed := render(s)

	if plain != observed {
		t.Fatalf("telemetry changed study output:\n--- plain ---\n%s\n--- observed ---\n%s", plain, observed)
	}

	// The equality above must not be vacuous: the observed run has to have
	// actually produced telemetry on every facet.
	var sb strings.Builder
	if err := o.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"pks-select", "silicon", "full-sim", `"ph":"X"`} {
		if !strings.Contains(sb.String(), span) {
			t.Errorf("trace missing %q", span)
		}
	}
	if n := o.SimMetrics().Kernels.Value(); n == 0 {
		t.Error("no kernels counted during the observed run")
	}
	if n := o.PoolMetrics().Tasks.Value(); n == 0 {
		t.Error("pool observer saw no tasks")
	}
	if len(o.Audit.Filter("pks", "selected")) == 0 {
		t.Error("no PKS selection audit records")
	}
	if len(o.Audit.Filter("pkp", "")) == 0 {
		t.Error("no PKP audit records")
	}
}
