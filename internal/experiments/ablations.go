package experiments

import (
	"fmt"
	"time"

	"pka/internal/classify"
	"pka/internal/cluster"
	"pka/internal/parallel"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/profiler"
	"pka/internal/report"
	"pka/internal/sim"
	"pka/internal/stats"
	"pka/internal/workload"
)

// ablationSet is a representative cross-section of workloads: multi-kernel
// regular, irregular, shrinking-grid, iterative-stencil, and dense-GEMM.
func ablationSet() []*workload.Workload {
	var out []*workload.Workload
	for _, name := range []string{
		"Rodinia/gauss_208",
		"Rodinia/bfs65536",
		"Parboil/histo",
		"Polybench/fdtd2d",
		"Polybench/gramschmidt",
		"Rodinia/srad_v1",
		"Cutlass/1024x256x1024_sgemm",
	} {
		if w := workload.Find(name); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// addRows fans fn out over the ablation workload set and appends the
// resulting rows to tab in workload order, keeping the rendered table
// independent of the study's parallelism.
func addRows(s *Study, tab *report.Table, fn func(w *workload.Workload) ([]string, error)) (*report.Table, error) {
	rows, err := parallel.Map(s.Cfg.Parallelism, ablationSet(),
		func(_ int, w *workload.Workload) ([]string, error) { return fn(w) })
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tab.AddRow(row...)
	}
	return tab, nil
}

// AblationRepPolicy compares the three representative-selection policies
// (paper Section 3.1: random is inconsistent; first ≈ center; first is
// cheapest to trace).
func AblationRepPolicy(s *Study) (*report.Table, error) {
	tab := &report.Table{
		Title:   "Ablation: representative policy (PKS silicon selection error %)",
		Columns: []string{"Workload", "first", "center", "random(seed1)", "random(seed2)"},
	}
	dev := s.SelectionDevice()
	return addRows(s, tab, func(w *workload.Workload) ([]string, error) {
		row := []string{w.FullName()}
		for _, spec := range []struct {
			pol  pks.RepPolicy
			seed uint64
		}{
			{pks.RepFirstChronological, 1},
			{pks.RepClusterCenter, 1},
			{pks.RepRandom, 1},
			{pks.RepRandom, 99},
		} {
			opts := s.Cfg.PKS
			opts.Representative = spec.pol
			opts.Seed = spec.seed
			sel, err := pks.Select(dev, w, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(sel.SelectionErrorPct, 2))
		}
		return row, nil
	})
}

// AblationPKPThreshold sweeps the stability threshold s across the
// paper's three values, reporting projection error and speedup per
// workload (the Figure 5 tradeoff, but aggregated).
func AblationPKPThreshold(s *Study) (*report.Table, error) {
	dev := s.SelectionDevice()
	tab := &report.Table{
		Title:   "Ablation: PKP stability threshold s (kernel projection error % / speedup)",
		Columns: []string{"Workload", "s=2.5", "s=0.25", "s=0.025"},
	}
	return addRows(s, tab, func(w *workload.Workload) ([]string, error) {
		sel, err := s.Selection(w)
		if err != nil {
			return nil, err
		}
		// Use the most populous group's representative as the probe.
		best := 0
		for gi, g := range sel.Groups {
			if g.Count() > sel.Groups[best].Count() {
				best = gi
			}
		}
		k := w.Kernel(sel.Groups[best].RepIndex)
		full, err := sim.New(dev).RunKernel(&k, sim.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{w.FullName()}
		for _, th := range []float64{2.5, 0.25, 0.025} {
			p := pkp.New(pkp.Options{Threshold: th})
			res, err := sim.New(dev).RunKernel(&k, sim.Options{Controller: p})
			if err != nil {
				return nil, err
			}
			proj := p.Projection(res)
			errPct := stats.AbsPctErr(float64(proj.Cycles), float64(full.Cycles))
			speedup := float64(full.Cycles) / float64(res.Cycles)
			row = append(row, fmt.Sprintf("%s%% / %sx", report.F(errPct, 1), report.F(speedup, 1)))
		}
		return row, nil
	})
}

// AblationWaveConstraint measures PKP with and without the full-wave
// requirement, the contention-capture argument of Section 3.2.
func AblationWaveConstraint(s *Study) (*report.Table, error) {
	dev := s.SelectionDevice()
	tab := &report.Table{
		Title:   "Ablation: PKP wave constraint (projection error % / stop cycle)",
		Columns: []string{"Workload", "with wave", "without wave"},
	}
	return addRows(s, tab, func(w *workload.Workload) ([]string, error) {
		sel, err := s.Selection(w)
		if err != nil {
			return nil, err
		}
		best := 0
		for gi, g := range sel.Groups {
			if g.Count() > sel.Groups[best].Count() {
				best = gi
			}
		}
		k := w.Kernel(sel.Groups[best].RepIndex)
		full, err := sim.New(dev).RunKernel(&k, sim.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{w.FullName()}
		for _, disable := range []bool{false, true} {
			p := pkp.New(pkp.Options{DisableWaveConstraint: disable})
			res, err := sim.New(dev).RunKernel(&k, sim.Options{Controller: p})
			if err != nil {
				return nil, err
			}
			proj := p.Projection(res)
			errPct := stats.AbsPctErr(float64(proj.Cycles), float64(full.Cycles))
			row = append(row, fmt.Sprintf("%s%% @ %d", report.F(errPct, 1), res.Cycles))
		}
		return row, nil
	})
}

// AblationPCA compares selection with PCA ahead of K-Means against raw
// standardized features (the curse-of-dimensionality argument).
func AblationPCA(s *Study) (*report.Table, error) {
	dev := s.SelectionDevice()
	tab := &report.Table{
		Title:   "Ablation: PCA before K-Means (error % @ K)",
		Columns: []string{"Workload", "with PCA", "without PCA"},
	}
	return addRows(s, tab, func(w *workload.Workload) ([]string, error) {
		row := []string{w.FullName()}
		for _, disable := range []bool{false, true} {
			opts := s.Cfg.PKS
			opts.DisablePCA = disable
			sel, err := pks.Select(dev, w, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%s%% @ K=%d", report.F(sel.SelectionErrorPct, 2), sel.K))
		}
		return row, nil
	})
}

// AblationClusteringScale contrasts K-Means and hierarchical clustering
// runtimes as the kernel count grows — the paper's core scalability
// argument against TBPoint-style clustering.
func AblationClusteringScale(s *Study) (*report.Table, error) {
	rng := stats.NewRNG(17)
	tab := &report.Table{
		Title:   "Ablation: clustering scalability (wall time)",
		Columns: []string{"Points", "K-Means (K=10)", "Hierarchical (avg-linkage)"},
	}
	for _, n := range []int{200, 1000, 4000, 12000} {
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		t0 := time.Now()
		if _, err := cluster.KMeans(pts, 10, cluster.KMeansOptions{Seed: 5}); err != nil {
			return nil, err
		}
		kmT := time.Since(t0)

		hierCell := "intractable (refused)"
		if n <= 4000 {
			t0 = time.Now()
			if _, _, err := cluster.Agglomerative(pts, 0.5); err != nil {
				return nil, err
			}
			hierCell = time.Since(t0).Round(time.Millisecond).String()
		}
		tab.AddRow(fmt.Sprint(n), kmT.Round(time.Millisecond).String(), hierCell)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("hierarchical clustering is refused outright beyond %d points (quadratic memory); K-Means handles millions", cluster.MaxHierarchicalPoints))
	return tab, nil
}

// AblationClassifier compares the two-level mapping models on a workload
// forced into two-level profiling.
func AblationClassifier(s *Study) (*report.Table, error) {
	dev := s.SelectionDevice()
	w := workload.Find("Polybench/gramschmidt")
	opts := s.Cfg.PKS
	opts.MaxDetailed = w.N / 4
	sel, err := pks.Select(dev, w, opts)
	if err != nil {
		return nil, err
	}
	// Rebuild the labeled training data the two-level pass used: detailed
	// prefix features with group labels by nearest representative count
	// is internal; instead, train each model on a detailed re-profile and
	// measure holdout accuracy directly.
	var X [][]float64
	var y []int
	for i := 0; i < sel.DetailedKernels; i++ {
		k := w.Kernel(i)
		rec, _, err := profiler.Light(dev, &k)
		if err != nil {
			return nil, err
		}
		X = append(X, profiler.FeaturesOfLight(rec))
		// Label by which group's representative the kernel's silicon
		// cycles sit closest to — a observable proxy for the clustering
		// label that treats each model identically.
		best, bestD := 0, int64(1<<62)
		for gi, g := range sel.Groups {
			d := rec.Cycles - g.Representative.Cycles
			if d < 0 {
				d = -d
			}
			if d < bestD {
				best, bestD = gi, d
			}
		}
		y = append(y, best)
	}
	var trX, teX [][]float64
	var trY, teY []int
	for i := range X {
		if i%5 == 4 {
			teX, teY = append(teX, X[i]), append(teY, y[i])
		} else {
			trX, trY = append(trX, X[i]), append(trY, y[i])
		}
	}
	tab := &report.Table{
		Title:   "Ablation: two-level mapping classifier (holdout accuracy on gramschmidt)",
		Columns: []string{"Model", "Accuracy"},
	}
	models := []classify.Classifier{
		classify.NewSGD(3),
		classify.NewGaussianNB(),
		classify.NewMLP(3),
		classify.NewEnsemble(3),
	}
	for _, m := range models {
		if err := m.Fit(trX, trY, len(sel.Groups)); err != nil {
			return nil, err
		}
		tab.AddRow(m.Name(), report.F(classify.Accuracy(m, teX, teY), 3))
	}
	return tab, nil
}
