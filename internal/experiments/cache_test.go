package experiments

import (
	"strings"
	"testing"

	"pka/internal/artifact"
)

// TestCacheDeterminism is the artifact-cache golden test: a serial
// uncached study, a cold cached parallel study, and a warm cached parallel
// study (same directory, fresh Study so every in-memory cache starts
// empty) must render byte-identical figures, and the warm run must
// actually be served from disk.
func TestCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the artifact pipeline three times")
	}
	render := func(s *Study) string {
		var sb strings.Builder
		c6, t6, err := Figure6(s)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(c6.String())
		sb.WriteString(t6.String())
		tab4, err := Table4(s)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(tab4.String())
		return sb.String()
	}
	cached := func(dir string) (*Study, *artifact.Store) {
		st, err := artifact.Open(dir, artifact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		s := tinyStudy(4)
		s.SetArtifactStore(st)
		return s, st
	}

	serial := render(tinyStudy(1))

	dir := t.TempDir()
	coldStudy, coldStore := cached(dir)
	cold := render(coldStudy)
	if st := coldStore.Stats(); st.Writes == 0 {
		t.Fatal("cold run persisted nothing")
	}

	warmStudy, warmStore := cached(dir)
	warm := render(warmStudy)
	if st := warmStore.Stats(); st.Hits == 0 {
		t.Fatal("warm run never hit the artifact store")
	}
	if st := warmStore.Stats(); st.Writes != 0 {
		t.Errorf("warm run recomputed %d outcomes the store should have served", st.Writes)
	}

	if cold != serial {
		t.Errorf("cold cached output diverges from serial:\n--- serial ---\n%s\n--- cold ---\n%s", serial, cold)
	}
	if warm != serial {
		t.Errorf("warm cached output diverges from serial:\n--- serial ---\n%s\n--- warm ---\n%s", serial, warm)
	}

	// The counters surface through CacheStats under the families the obs
	// gauges are named after.
	cs := warmStudy.CacheStats()
	if cs["artifact"].Hits == 0 {
		t.Error("CacheStats does not report the artifact hits")
	}
	if _, ok := cs["kernel_mem"]; !ok {
		t.Error("CacheStats misses the kernel_mem family")
	}
}
