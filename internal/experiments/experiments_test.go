package experiments

import (
	"strings"
	"testing"

	"pka/internal/gpu"
	"pka/internal/workload"
)

// smallStudy restricts the study to a fast, structurally diverse subset so
// the integration tests exercise every generator without paying for the
// full 147-workload sweep (that is the bench harness's job).
func smallStudy() *Study {
	s := New()
	var ws []*workload.Workload
	for _, name := range []string{
		"Rodinia/gauss_208",
		"Rodinia/bfs65536",
		"Rodinia/hots_512",
		"Parboil/histo",
		"Polybench/fdtd2d",
		"Cutlass/128x128x512_sgemm",
		"MLPerf/3dunet_inf",
	} {
		w := workload.Find(name)
		if w == nil {
			panic("missing workload " + name)
		}
		ws = append(ws, w)
	}
	s.SetWorkloads(ws)
	return s
}

func TestStudyCaching(t *testing.T) {
	s := smallStudy()
	w := workload.Find("Rodinia/gauss_208")
	a, err := s.Selection(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Selection(w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Selection not cached")
	}
	sa, err := s.Silicon(gpu.VoltaV100(), w)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := s.Silicon(gpu.VoltaV100(), w)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Cycles != sb.Cycles {
		t.Error("Silicon results differ across calls")
	}
	// Different devices key separately.
	st, err := s.Silicon(gpu.TuringRTX2060(), w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == sa.Cycles {
		t.Error("Turing and Volta silicon suspiciously identical")
	}
}

func TestFigure1SmallSet(t *testing.T) {
	s := smallStudy()
	chart, tab, err := Figure1(s)
	if err != nil {
		t.Fatal(err)
	}
	out := chart.String() + tab.String()
	if !strings.Contains(out, "Silicon Profiler") || !strings.Contains(out, "Simulation") {
		t.Errorf("figure 1 output incomplete:\n%s", out)
	}
	// The MLPerf member must dominate the projected-simulation axis.
	if !strings.Contains(tab.String(), "3dunet") {
		t.Errorf("expected 3dunet as the max-simulation workload:\n%s", tab)
	}
}

func TestTable3Structure(t *testing.T) {
	s := New() // Table 3 touches only named workloads; full set is fine
	tab, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"gauss_208", "bfs65536", "histo", "fdtd2d", "gramschmidt"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %s:\n%s", want, out)
		}
	}
	// gauss_208: all 414 kernels in very few groups; the first selected
	// kernel must be 0 or 1.
	for _, row := range tab.Rows {
		if row[1] == "gauss_208" {
			if !strings.HasPrefix(row[2], "0") && !strings.HasPrefix(row[2], "1") {
				t.Errorf("gauss_208 selected IDs = %s, want first-chronological", row[2])
			}
			if !strings.Contains(row[3], "41") { // groups sum to 414
				t.Logf("gauss_208 counts: %s", row[3])
			}
		}
	}
}

func TestFigure4Groups(t *testing.T) {
	if testing.Short() {
		t.Skip("resnet selection is seconds-long")
	}
	s := New()
	tab, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "Group 0") {
		t.Fatalf("no groups rendered:\n%s", out)
	}
	// Figure 4's key claims: multiple groups, and groups mixing multiple
	// kernel names.
	if len(tab.Rows) < 3 {
		t.Errorf("only %d groups for ResNet; paper found 9", len(tab.Rows))
	}
	mixed := false
	for _, row := range tab.Rows {
		if strings.Contains(row[3], ",") {
			mixed = true
		}
	}
	if !mixed {
		t.Error("no group contains multiple kernel names; clustering should be name-independent")
	}
}

func TestFigure5StoppingPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := New()
	charts, tab, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 2 {
		t.Fatalf("want 2 charts, got %d", len(charts))
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 stop rows, got %d", len(tab.Rows))
	}
	// Looser thresholds stop earlier (column 2 = stop cycle).
	for app := 0; app < 2; app++ {
		base := app * 3
		if tab.Rows[base][1] != "2.500" || tab.Rows[base+2][1] != "0.025" {
			t.Fatalf("threshold ordering wrong: %+v", tab.Rows[base])
		}
	}
}

func TestComparableSetExcludes(t *testing.T) {
	s := New()
	for _, w := range s.ComparableSet() {
		if w.Suite == "MLPerf" {
			t.Errorf("MLPerf workload %s in comparable set", w.FullName())
		}
		if w.Quirk != "" {
			t.Errorf("quirked workload %s in comparable set", w.FullName())
		}
	}
	if len(s.ComparableSet()) < 50 {
		t.Errorf("comparable set suspiciously small: %d", len(s.ComparableSet()))
	}
}

func TestTable4SmallSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := smallStudy()
	tab, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "gauss_208") || !strings.Contains(out, "3dunet") {
		t.Fatalf("rows missing:\n%s", out)
	}
	// MLPerf rows must star out the Turing/Ampere columns.
	for _, row := range tab.Rows {
		if strings.Contains(row[0], "3dunet") {
			if row[3] != "*" || row[5] != "*" {
				t.Errorf("3dunet Turing/Ampere columns should be '*': %v", row)
			}
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := New()
	if tab, err := AblationPCA(s); err != nil || len(tab.Rows) == 0 {
		t.Fatalf("PCA ablation: %v", err)
	}
	if tab, err := AblationClusteringScale(s); err != nil || len(tab.Rows) == 0 {
		t.Fatalf("clustering-scale ablation: %v", err)
	}
	if tab, err := AblationRepPolicy(s); err != nil || len(tab.Rows) == 0 {
		t.Fatalf("rep-policy ablation: %v", err)
	}
}
