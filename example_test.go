package pka_test

import (
	"fmt"

	"pka"
)

// ExampleSelect shows Principal Kernel Selection collapsing a repetitive
// launch stream into one weighted representative.
func ExampleSelect() {
	app := &pka.Workload{
		Suite: "docs", Name: "repeated-gemm", N: 25,
		Gen: func(i int) pka.KernelDesc {
			return pka.KernelDesc{
				Name: "sgemm", Grid: pka.D2(8, 8), Block: pka.D1(256),
				Mix:              pka.InstrMix{Compute: 200, GlobalLoads: 8, SharedLoads: 16},
				CoalescingFactor: 4, WorkingSetBytes: 8 << 20, StridedFraction: 0.95,
				DivergenceEff: 1, Seed: uint64(i) + 1,
			}
		},
	}
	sel, err := pka.Select(pka.VoltaV100(), app, pka.SelectOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("groups: %d\n", sel.K)
	fmt.Printf("representative: kernel %d\n", sel.Groups[0].RepIndex)
	fmt.Printf("population: %d\n", sel.Groups[0].Count())
	// Output:
	// groups: 1
	// representative: kernel 0
	// population: 25
}

// ExampleNewProjector shows Principal Kernel Projection stopping a
// simulation at IPC stability and projecting the rest of the kernel.
func ExampleNewProjector() {
	k := pka.KernelDesc{
		Name: "steady", Grid: pka.D1(6400), Block: pka.D1(256),
		Mix:              pka.InstrMix{Compute: 120, GlobalLoads: 4},
		CoalescingFactor: 4, WorkingSetBytes: 1 << 20, StridedFraction: 0.95,
		DivergenceEff: 1, Seed: 5,
	}
	p := pka.NewProjector(pka.ProjectorOptions{})
	res, err := pka.NewSimulator(pka.VoltaV100()).RunKernel(&k, pka.SimOptions{Controller: p})
	if err != nil {
		fmt.Println(err)
		return
	}
	proj := p.Projection(res)
	fmt.Printf("stopped early: %v\n", res.StoppedEarly)
	fmt.Printf("simulated a fraction: %v\n", res.BlocksCompleted < res.BlocksTotal)
	fmt.Printf("projection covers the grid: %v\n", proj.Cycles > res.Cycles)
	// Output:
	// stopped early: true
	// simulated a fraction: true
	// projection covers the grid: true
}

// ExampleDevice_WithSMs shows the MPS-style SM masking used by the
// paper's 80-versus-40-SM case study.
func ExampleDevice_WithSMs() {
	full := pka.VoltaV100()
	half := full.WithSMs(40)
	fmt.Printf("%d -> %d SMs, same bandwidth: %v\n",
		full.NumSMs, half.NumSMs, full.DRAMBandwidthGBs == half.DRAMBandwidthGBs)
	// Output:
	// 80 -> 40 SMs, same bandwidth: true
}
