// Package pka is the public API of this repository's from-scratch Go
// reproduction of "Principal Kernel Analysis: A Tractable Methodology to
// Simulate Scaled GPU Workloads" (Baddouh et al., MICRO 2021).
//
// The package re-exports the stable surface of the internal substrates:
//
//   - GPU device models (Volta V100, Turing RTX 2060, Ampere RTX 3070)
//     with occupancy rules and MPS-style SM masking;
//   - the kernel-launch representation (KernelDesc) and the 147-workload
//     study set across Rodinia, Parboil, Polybench, CUTLASS, DeepBench and
//     MLPerf;
//   - the analytical silicon model (ground truth) and the cycle-level GPU
//     simulator (the Accel-Sim stand-in);
//   - Principal Kernel Selection (PCA + K-Means over Table-2 profiler
//     metrics, with two-level profiling for million-kernel workloads),
//     Principal Kernel Projection (online IPC-stability detection), and
//     the combined PKA pipeline with error/speedup accounting;
//   - the TBPoint and first-N-instructions baselines; and
//   - the experiment generators that regenerate every table and figure of
//     the paper's evaluation.
//
// Quick start:
//
//	w := pka.FindWorkload("Rodinia/gauss_208")
//	cfg := pka.Config{Device: pka.VoltaV100()}
//	ev, err := pka.Evaluate(cfg, w)
//	// ev.Selection.K groups; ev.PKA.ErrorPct vs silicon; ev.PKA.SpeedupVsFull
//
// See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for
// paper-versus-measured results.
package pka

import (
	"pka/internal/core"
	"pka/internal/experiments"
	"pka/internal/gpu"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/report"
	"pka/internal/sampling"
	"pka/internal/silicon"
	"pka/internal/sim"
	"pka/internal/tbpoint"
	"pka/internal/trace"
	"pka/internal/workload"
)

// Device and kernel modeling.
type (
	// Device is a GPU hardware configuration.
	Device = gpu.Device
	// Generation enumerates NVIDIA architecture generations.
	Generation = gpu.Generation
	// Occupancy describes how a kernel's blocks map onto an SM.
	Occupancy = gpu.Occupancy
	// KernelDesc describes one kernel launch.
	KernelDesc = trace.KernelDesc
	// InstrMix holds per-thread dynamic instruction counts.
	InstrMix = trace.InstrMix
	// Dim3 is a CUDA launch dimension.
	Dim3 = trace.Dim3
	// Workload is a named, deterministic stream of kernel launches.
	Workload = workload.Workload
)

// Selection and projection.
type (
	// SelectOptions configures Principal Kernel Selection.
	SelectOptions = pks.Options
	// Selection is PKS's output: groups, representatives and weights.
	Selection = pks.Selection
	// Group is one cluster of similar kernels.
	Group = pks.Group
	// RepPolicy selects the per-group representative.
	RepPolicy = pks.RepPolicy
	// CrossGenResult reports a Volta selection evaluated on another
	// device's silicon.
	CrossGenResult = pks.CrossGenResult
	// ProjectorOptions configures Principal Kernel Projection.
	ProjectorOptions = pkp.Options
	// Projector detects IPC stability online inside the simulator.
	Projector = pkp.Projector
	// Projection extrapolates full-kernel statistics from a truncated
	// simulation.
	Projection = pkp.Projection
)

// Pipeline and results.
type (
	// Config parameterizes an evaluation.
	Config = core.Config
	// Evaluation bundles one workload's full results.
	Evaluation = core.Evaluation
	// SampledSim is the outcome of simulating only selected kernels.
	SampledSim = core.SampledSim
	// SimOptions tunes a kernel simulation run.
	SimOptions = sim.Options
	// KernelResult aggregates one simulated kernel.
	KernelResult = sim.KernelResult
	// Telemetry is the per-cycle view handed to simulation controllers.
	Telemetry = sim.Telemetry
	// Controller observes simulation progress and may stop it early.
	Controller = sim.Controller
	// SiliconResult describes a kernel execution on modeled hardware.
	SiliconResult = silicon.Result
	// FullSimResult is an application-level (full or first-N) simulation
	// outcome.
	FullSimResult = sampling.Result
	// TBPointSelection is the TBPoint baseline's output.
	TBPointSelection = tbpoint.Selection
	// Study memoizes experiment state across table/figure generators.
	Study = experiments.Study
	// Table is an ASCII/CSV result table.
	Table = report.Table
	// Chart is an ASCII multi-series plot.
	Chart = report.Chart
)

// Representative policies (paper Section 3.1).
const (
	RepFirstChronological = pks.RepFirstChronological
	RepClusterCenter      = pks.RepClusterCenter
	RepRandom             = pks.RepRandom
)

// PKP defaults (paper Section 3.2: one setting for all 147 workloads).
const (
	DefaultStabilityThreshold = pkp.DefaultThreshold
	DefaultStabilityWindow    = pkp.DefaultWindow
)

// ErrInfeasible reports a workload beyond the full-simulation budget.
var ErrInfeasible = sampling.ErrInfeasible

// VoltaV100 returns the Tesla V100 configuration (the selection machine).
func VoltaV100() Device { return gpu.VoltaV100() }

// TuringRTX2060 returns the GeForce RTX 2060 configuration.
func TuringRTX2060() Device { return gpu.TuringRTX2060() }

// AmpereRTX3070 returns the GeForce RTX 3070 configuration.
func AmpereRTX3070() Device { return gpu.AmpereRTX3070() }

// D1 is shorthand for a one-dimensional launch dimension.
func D1(x int) Dim3 { return trace.D1(x) }

// D2 is shorthand for a two-dimensional launch dimension.
func D2(x, y int) Dim3 { return trace.D2(x, y) }

// AllWorkloads returns the full 147-workload study set.
func AllWorkloads() []*Workload { return workload.All() }

// WorkloadsBySuite returns one suite's workloads ("Rodinia", "Parboil",
// "Polybench", "Cutlass", "DeepBench", "MLPerf").
func WorkloadsBySuite(suite string) []*Workload { return workload.BySuite(suite) }

// FindWorkload returns the workload named "suite/name", or nil.
func FindWorkload(fullName string) *Workload { return workload.Find(fullName) }

// LoadWorkloadJSON reads a user-defined workload document from disk (see
// internal/workload's JSON schema: a list of kernel launches with
// optional repeat counts).
func LoadWorkloadJSON(path string) (*Workload, error) { return workload.LoadJSON(path) }

// Select runs Principal Kernel Selection for a workload on a device.
func Select(dev Device, w *Workload, opts SelectOptions) (*Selection, error) {
	return pks.Select(dev, w, opts)
}

// ProjectOnDevice reuses a selection on another device's silicon — the
// paper's cross-generation validation.
func ProjectOnDevice(dev Device, w *Workload, sel *Selection) (CrossGenResult, error) {
	return pks.ProjectOnDevice(dev, w, sel)
}

// NewProjector returns a Principal Kernel Projection controller.
func NewProjector(opts ProjectorOptions) *Projector { return pkp.New(opts) }

// NewSimulator returns a cycle-level simulator for the device.
func NewSimulator(dev Device) *Simulator { return sim.New(dev) }

// Simulator is the cycle-level GPU simulator (the Accel-Sim stand-in).
type Simulator = sim.Simulator

// ExecuteSilicon runs one kernel on the modeled hardware (ground truth).
func ExecuteSilicon(dev Device, k *KernelDesc) (SiliconResult, error) {
	return silicon.ExecuteKernel(dev, k)
}

// Evaluate runs the complete PKA pipeline for one workload.
func Evaluate(cfg Config, w *Workload) (*Evaluation, error) { return core.Evaluate(cfg, w) }

// RunSampled simulates only a selection's representatives (PKA when
// usePKP is true) and projects application-level metrics.
func RunSampled(cfg Config, w *Workload, sel *Selection, usePKP bool) (SampledSim, error) {
	return core.RunSampled(cfg, w, sel, usePKP)
}

// FullSim simulates every kernel; it returns ErrInfeasible beyond the
// budget (0 = default).
func FullSim(dev Device, w *Workload, budgetWarpInstrs int64) (*FullSimResult, error) {
	return sampling.FullSim(dev, w, budgetWarpInstrs)
}

// FirstN runs the first-N-instructions baseline (0 = default budget).
func FirstN(dev Device, w *Workload, nWarpInstrs int64) (*FullSimResult, error) {
	return sampling.FirstN(dev, w, nWarpInstrs)
}

// TBPointSelect runs the TBPoint baseline's kernel clustering.
func TBPointSelect(dev Device, w *Workload) (*TBPointSelection, error) {
	return tbpoint.Select(dev, w, tbpoint.Options{})
}

// NewStudy returns a memoizing experiment harness with the paper's
// configuration. Generators: Figure1..Figure10, Table3, Table4 and the
// ablations live in the same package surface:
//
//	study := pka.NewStudy()
//	tab, err := pka.Table3(study)
//
// A Study is safe for concurrent use: artifacts memoize through
// singleflight caches, and generators fan per-workload computation across
// Config.Parallelism workers (0 = GOMAXPROCS, 1 = serial) while emitting
// byte-identical output at any setting.
func NewStudy() *Study { return experiments.New() }

// Experiment generators, re-exported for API users; each regenerates one
// of the paper's tables or figures from the study state.
var (
	Figure1  = experiments.Figure1
	Table3   = experiments.Table3
	Figure4  = experiments.Figure4
	Figure5  = experiments.Figure5
	Figure6  = experiments.Figure6
	Figure7  = experiments.Figure7
	Figure8  = experiments.Figure8
	Table4   = experiments.Table4
	Figure9  = experiments.Figure9
	Figure10 = experiments.Figure10
)
