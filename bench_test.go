// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per artifact), plus ablation benches for the
// design choices DESIGN.md calls out and microbenchmarks of the hot
// substrates.
//
// The experiment benches share one memoized Study, so the first benchmark
// that needs an artifact pays for it and the rest reuse it; a full
//
//	go test -bench=. -benchmem
//
// run therefore costs roughly one complete 147-workload study, with
// per-workload artifacts fanned across GOMAXPROCS workers (tens of
// minutes on one core, less with more). Individual artifacts can be
// regenerated with -bench=BenchmarkTable4 etc., or via cmd/pkaexp;
// BenchmarkStudyParallel isolates the fan-out speedup itself.
package pka

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pka/internal/artifact"
	"pka/internal/cluster"
	"pka/internal/core"
	"pka/internal/dedup"
	"pka/internal/experiments"
	"pka/internal/gpu"
	"pka/internal/parallel"
	"pka/internal/pkp"
	"pka/internal/pks"
	"pka/internal/predict"
	"pka/internal/remote"
	"pka/internal/sampling"
	"pka/internal/serve"
	"pka/internal/sim"
	"pka/internal/stats"
	"pka/internal/workload"
)

var (
	studyOnce sync.Once
	study     *experiments.Study
)

// saveArtifact persists a regenerated table/figure under results/ (the
// testing framework truncates long benchmark logs, so files are the
// durable record) and returns a short preview for the log.
func saveArtifact(b *testing.B, name string, parts ...interface{}) {
	b.Helper()
	var sb strings.Builder
	for _, p := range parts {
		switch v := p.(type) {
		case *Table:
			sb.WriteString(v.String())
		case *Chart:
			sb.WriteString(v.String())
		case []*Chart:
			for _, c := range v {
				sb.WriteString(c.String())
				sb.WriteByte('\n')
			}
		case string:
			sb.WriteString(v)
		}
		sb.WriteByte('\n')
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		b.Logf("results dir: %v", err)
		return
	}
	path := filepath.Join("results", name+".txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		b.Logf("writing %s: %v", path, err)
		return
	}
	lines := strings.Split(sb.String(), "\n")
	n := len(lines)
	if n > 6 {
		n = 6
	}
	b.Logf("full artifact in %s; head:\n%s", path, strings.Join(lines[:n], "\n"))
}

func sharedStudy() *experiments.Study {
	studyOnce.Do(func() { study = experiments.New() })
	return study
}

func BenchmarkFigure1(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		chart, tab, err := experiments.Figure1(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure1", chart, tab)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table3(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "table3", tab)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure4(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure4", tab)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		charts, tab, err := experiments.Figure5(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure5", charts, tab)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		chart, tab, err := experiments.Figure6(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure6", chart, tab)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		chart, tab, err := experiments.Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure7", chart, tab)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		chart, tab, err := experiments.Figure8(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure8", chart, tab)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table4(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			parts := []interface{}{tab}
			if sum, err := experiments.Table4SuiteSummary(s); err == nil {
				parts = append(parts, sum)
			}
			saveArtifact(b, "table4", parts...)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		chart, tab, err := experiments.Figure9(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure9", chart, tab)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		chart, tab, err := experiments.Figure10(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, "figure10", chart, tab)
		}
	}
}

// --- Ablation benches (DESIGN.md's design-choice list) ---

func benchAblation(b *testing.B, name string, f func(*experiments.Study) (*Table, error)) {
	b.Helper()
	s := sharedStudy()
	for i := 0; i < b.N; i++ {
		tab, err := f(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			saveArtifact(b, name, tab)
		}
	}
}

func BenchmarkAblationRepPolicy(b *testing.B) {
	benchAblation(b, "ablation-reppolicy", experiments.AblationRepPolicy)
}

func BenchmarkAblationPKPThreshold(b *testing.B) {
	benchAblation(b, "ablation-pkpthreshold", experiments.AblationPKPThreshold)
}

func BenchmarkAblationWaveConstraint(b *testing.B) {
	benchAblation(b, "ablation-waveconstraint", experiments.AblationWaveConstraint)
}

func BenchmarkAblationPCA(b *testing.B) {
	benchAblation(b, "ablation-pca", experiments.AblationPCA)
}

func BenchmarkAblationClusteringScale(b *testing.B) {
	benchAblation(b, "ablation-clusteringscale", experiments.AblationClusteringScale)
}

func BenchmarkAblationClassifier(b *testing.B) {
	benchAblation(b, "ablation-classifier", experiments.AblationClassifier)
}

// BenchmarkStudyParallel measures the study engine's fan-out: the same
// multi-workload Figure-6 sweep generated serially (Parallelism=1) and
// with four workers, each on a fresh unmemoized Study. Four study workers
// only help when the runtime can actually run them on distinct processors,
// so the p=4 and speedup sub-benches pin GOMAXPROCS to the worker count;
// the speedup sub-bench (serial-time / parallel-time per iteration) is
// skipped outright on a single-CPU machine, where it could only record a
// meaningless ~1x.
func BenchmarkStudyParallel(b *testing.B) {
	ws := studyBenchSet(b)
	sweep := func(p int) time.Duration {
		s := experiments.New()
		s.Cfg.Parallelism = p
		s.SetWorkloads(ws)
		t0 := time.Now()
		if _, _, err := experiments.Figure6(s); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	b.Run("p=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(1)
		}
	})
	b.Run("p=4", func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		for i := 0; i < b.N; i++ {
			sweep(4)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		if runtime.NumCPU() < 2 {
			b.Skip("speedup needs >= 2 CPUs; a single-CPU measurement would be meaningless")
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		for i := 0; i < b.N; i++ {
			serial := sweep(1)
			par := sweep(4)
			b.ReportMetric(serial.Seconds()/par.Seconds(), "x")
		}
	})
}

// studyBenchSet is the multi-workload subset the study-engine benches
// sweep: large and small, regular and irregular, so the scheduler sees a
// heavy-tailed task-cost distribution.
func studyBenchSet(b *testing.B) []*workload.Workload {
	b.Helper()
	var ws []*workload.Workload
	for _, n := range []string{
		"Rodinia/gauss_208", "Rodinia/bfs65536", "Rodinia/hots_512",
		"Parboil/histo", "Polybench/fdtd2d", "Cutlass/128x128x512_sgemm",
	} {
		w := workload.Find(n)
		if w == nil {
			b.Fatalf("missing workload %s", n)
		}
		ws = append(ws, w)
	}
	return ws
}

// BenchmarkStudyKernelSched isolates the kernel-granular scheduler: one
// workload's full simulation split into per-kernel tasks, executed at
// scheduler width 1 and 4 with no caching. Unlike BenchmarkStudyParallel's
// per-workload fan-out, a single many-kernel workload can only scale if
// parallelism reaches inside the workload — which is exactly what the
// kernel scheduler adds.
func BenchmarkStudyKernelSched(b *testing.B) {
	w := workload.Find("Rodinia/gauss_208")
	if w == nil {
		b.Fatal("missing workload")
	}
	dev := VoltaV100()
	run := func(width int) time.Duration {
		ex := sampling.NewExec(parallel.NewScheduler(width), nil)
		t0 := time.Now()
		if _, err := ex.FullSim(dev, w, 0); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	b.Run("w=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(1)
		}
	})
	b.Run("w=4", func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		for i := 0; i < b.N; i++ {
			run(4)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		if runtime.NumCPU() < 2 {
			b.Skip("speedup needs >= 2 CPUs; a single-CPU measurement would be meaningless")
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		for i := 0; i < b.N; i++ {
			serial := run(1)
			par := run(4)
			b.ReportMetric(serial.Seconds()/par.Seconds(), "x")
		}
	})
	// The steady-state cost of one kernel task must stay near zero: the
	// simulator pool reuses cache arrays across tasks, so a warm task is a
	// flush plus the simulation itself. The bound is loose headroom over
	// the ~3 allocs measured when the pool was introduced (down from ~730
	// on the always-fresh path); busting it means per-task simulator
	// construction has crept back in.
	b.Run("allocs", func(b *testing.B) {
		k := w.Kernel(0)
		task := sampling.KernelTask{Mode: sampling.ModeFull}
		var ex *sampling.Exec
		if _, err := ex.RunKernelTask(dev, &k, task); err != nil { // warm the pool
			b.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := ex.RunKernelTask(dev, &k, task); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(allocs, "allocs/op")
		if allocs > 32 {
			b.Fatalf("warm kernel task costs %.0f allocs/op, want <= 32: the simulator pool is no longer being reused", allocs)
		}
	})
}

// benchWorkerEnv marks a re-exec of the test binary as a loopback pkad
// worker process for BenchmarkStudyRemote.
const benchWorkerEnv = "PKA_BENCH_WORKER"

// TestMain lets the test binary double as its own worker fleet: when
// benchWorkerEnv is set the process serves the remote-exec protocol on an
// ephemeral loopback port (printing the address on stdout) instead of
// running tests.
func TestMain(m *testing.M) {
	if os.Getenv(benchWorkerEnv) != "" {
		runBenchWorker()
		return
	}
	os.Exit(m.Run())
}

func runBenchWorker() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench worker:", err)
		os.Exit(1)
	}
	fmt.Println(ln.Addr().String())
	srv := remote.NewServer(sampling.NewExec(nil, nil), 4)
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "bench worker:", err)
		os.Exit(1)
	}
}

// spawnBenchWorker re-execs the test binary as one loopback worker and
// returns its base URL. Skips (not fails) when the process can't be
// spawned, so sandboxed runners degrade gracefully.
func spawnBenchWorker(b *testing.B) string {
	b.Helper()
	exe, err := os.Executable()
	if err != nil {
		b.Skipf("cannot locate test binary: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), benchWorkerEnv+"=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		b.Skipf("worker stdout: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		b.Skipf("spawning loopback worker: %v", err)
	}
	b.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	line, err := bufio.NewReader(out).ReadString('\n')
	if err != nil {
		b.Skipf("reading worker address: %v", err)
	}
	return "http://" + strings.TrimSpace(line)
}

// BenchmarkStudyRemote measures the scale-out tier: the Figure-6 sweep on
// a fresh Study per iteration, entirely in-process versus dispatched to
// two loopback worker processes. Separate processes sidestep GOMAXPROCS:
// on a multi-core box the workers' simulations run on cores the local
// process isn't using, so the sweep should beat single-process; on one
// CPU the RPC overhead makes the comparison meaningless and the speedup
// sub-bench skips.
func BenchmarkStudyRemote(b *testing.B) {
	ws := studyBenchSet(b)
	sweep := func(d *remote.Dispatcher) time.Duration {
		s := experiments.New()
		s.Cfg.Parallelism = 4
		s.SetWorkloads(ws)
		if d != nil {
			s.SetRemote(d)
		}
		t0 := time.Now()
		if _, _, err := experiments.Figure6(s); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	pool := func(b *testing.B) *remote.Dispatcher {
		return remote.NewDispatcher(remote.DispatcherOptions{
			Workers: []string{spawnBenchWorker(b), spawnBenchWorker(b)},
		})
	}
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(nil)
		}
	})
	b.Run("workers=2", func(b *testing.B) {
		d := pool(b)
		for i := 0; i < b.N; i++ {
			sweep(d)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		if runtime.NumCPU() < 4 {
			b.Skip("remote speedup needs >= 4 CPUs; worker processes on a single CPU only add RPC overhead")
		}
		d := pool(b)
		for i := 0; i < b.N; i++ {
			local := sweep(nil)
			dist := sweep(d)
			b.ReportMetric(local.Seconds()/dist.Seconds(), "x")
		}
	})
}

// BenchmarkStudyCache measures the persistent artifact cache: the same
// Figure-6 sweep on a fresh Study per iteration, cold (empty directory
// every time) versus warm (a directory prewarmed once, so every kernel
// outcome is served from disk). Fresh Studies keep the in-memory caches
// cold in both arms; only the disk layer differs.
func BenchmarkStudyCache(b *testing.B) {
	ws := studyBenchSet(b)
	sweep := func(dir string) time.Duration {
		st, err := artifact.Open(dir, artifact.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		s := experiments.New()
		s.SetWorkloads(ws)
		s.SetArtifactStore(st)
		t0 := time.Now()
		if _, _, err := experiments.Figure6(s); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	warmDir := b.TempDir()
	sweep(warmDir) // prewarm the warm arm's directory
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b.TempDir())
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(warmDir)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cold := sweep(b.TempDir())
			warm := sweep(warmDir)
			b.ReportMetric(cold.Seconds()/warm.Seconds(), "x")
		}
	})
}

// BenchmarkStudyPredict measures the learned tier-0 predictor: the same
// study set evaluated on a fresh Exec with no caches at all, versus a
// fresh Exec whose only shortcut is a predictor model trained from a
// prewarmed artifact store. Every kernel task hits a training key, so
// the predict arm serves exact stored outcomes from memory without
// simulating or touching disk — the warm-path replacement the tier
// exists for. CI gates nopredict/predict >= 1.3x; the gate needs no CPU
// floor because the win is work elimination, not parallelism.
func BenchmarkStudyPredict(b *testing.B) {
	ws := studyBenchSet(b)
	dev := gpu.VoltaV100()
	st, err := artifact.Open(b.TempDir(), artifact.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	evalAll := func(e *sampling.Exec) time.Duration {
		t0 := time.Now()
		for _, w := range ws {
			if _, err := core.Evaluate(core.Config{Device: dev, Exec: e}, w); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(t0)
	}
	evalAll(sampling.NewExec(parallel.NewScheduler(0), st)) // warm the store
	samples, scan := predict.ScanStore(dev, st, ws, predict.ScanOptions{})
	if scan.Hits == 0 {
		b.Fatalf("store scan found no training samples: %+v", scan)
	}
	model, err := predict.Train(dev, samples, predict.TrainOptions{})
	if err != nil {
		b.Fatal(err)
	}
	run := func(withModel bool) time.Duration {
		e := sampling.NewExec(parallel.NewScheduler(0), nil)
		if withModel {
			e.SetPredictor(predict.NewTier(model, predict.TierOptions{VerifyFraction: -1}))
		}
		return evalAll(e)
	}
	b.Run("nopredict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(false)
		}
	})
	b.Run("predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(true)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nop := run(false)
			pred := run(true)
			b.ReportMetric(nop.Seconds()/pred.Seconds(), "x")
		}
	})
}

// BenchmarkStudySuiteDedup measures the tentpole saving of the suite
// dedup pass on the gauss size-variant suite: the `perapp` arm runs each
// workload through its own PKS selection, the `dedup` arm runs the whole
// suite through one shared cross-workload selection. Both arms report
// the total simulated warp-instructions as a `warp-instrs` metric; CI
// gates perapp/dedup >= 1.3x via benchjson -check-metric-ratio, pinning
// the headline reduction the dedup pass exists for.
func BenchmarkStudySuiteDedup(b *testing.B) {
	dev := gpu.VoltaV100()
	var ws []*workload.Workload
	for _, n := range []string{"Rodinia/gauss_s16", "Rodinia/gauss_s64", "Rodinia/gauss_s256"} {
		w := workload.Find(n)
		if w == nil {
			b.Fatalf("missing workload %s", n)
		}
		ws = append(ws, w)
	}
	cfg := core.Config{Device: dev}
	b.Run("perapp", func(b *testing.B) {
		var work int64
		for i := 0; i < b.N; i++ {
			work = 0
			for _, w := range ws {
				sel, err := pks.Select(dev, w, pks.Options{})
				if err != nil {
					b.Fatal(err)
				}
				out, err := core.RunSampled(cfg, w, sel, false)
				if err != nil {
					b.Fatal(err)
				}
				work += out.SimWarpInstrs
			}
		}
		b.ReportMetric(float64(work), "warp-instrs")
	})
	b.Run("dedup", func(b *testing.B) {
		var work int64
		for i := 0; i < b.N; i++ {
			suite, err := dedup.Select(dev, ws, dedup.Options{})
			if err != nil {
				b.Fatal(err)
			}
			run, err := dedup.Run(cfg, ws, suite, false)
			if err != nil {
				b.Fatal(err)
			}
			work = run.SimWarpInstrs
		}
		b.ReportMetric(float64(work), "warp-instrs")
	})
}

// serveBenchTemplates builds the serving-tier bench request set: a mixed-
// tenant batch of pka studies on the same workload, each with a distinct
// PKP window so every request has a distinct content key — no arm gets to
// collapse the batch into one simulation via the mem cache, and the bench
// measures real study execution rather than cache lookups.
func serveBenchTemplates() []serve.StudyRequest {
	tenants := []string{"prod", "prod", "prod", "batch"}
	reqs := make([]serve.StudyRequest, 12)
	for i := range reqs {
		reqs[i] = serve.StudyRequest{
			Tenant:   tenants[i%len(tenants)],
			Workload: "Rodinia/hots_512",
			Window:   1000 + i,
		}
	}
	return reqs
}

// BenchmarkStudyStream measures what streaming PKS buys: the same
// workload evaluated phase-sequentially (Principal Kernel Selection runs
// to completion, then the evaluation phases fan out at p=4) and through
// the streaming pipeline (profiling, advisory clustering, and speculative
// simulation overlap event arrival at the same parallelism). Both arms
// compute byte-identical evaluations on fresh unmemoized Execs; the
// difference is pure phase overlap, so the speedup sub-bench (gated by
// benchjson -check-ratio at >= 4 CPUs) records how much reconciliation
// work the speculative warms moved under the profiling phase.
func BenchmarkStudyStream(b *testing.B) {
	w := workload.Find("Rodinia/gauss_208")
	if w == nil {
		b.Fatal("missing workload Rodinia/gauss_208")
	}
	cfgFor := func() core.Config {
		return core.Config{
			Device:      gpu.VoltaV100(),
			Parallelism: 4,
			Exec:        sampling.NewExec(parallel.NewScheduler(4), nil),
		}
	}
	sequential := func() time.Duration {
		c := cfgFor()
		t0 := time.Now()
		sel, err := pks.Select(c.Device, w, c.PKSOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.EvaluateWithSelection(c, w, sel); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	streaming := func() time.Duration {
		c := cfgFor()
		t0 := time.Now()
		if _, err := core.RunStream(c, w, core.StreamOptions{SpecWorkers: 3}); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	b.Run("sequential", func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		for i := 0; i < b.N; i++ {
			sequential()
		}
	})
	b.Run("streaming", func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		for i := 0; i < b.N; i++ {
			streaming()
		}
	})
	b.Run("speedup", func(b *testing.B) {
		if runtime.NumCPU() < 4 {
			b.Skip("overlap needs >= 4 CPUs; without cores to run the warms on, streaming only adds bookkeeping")
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		for i := 0; i < b.N; i++ {
			serial := sequential()
			par := streaming()
			b.ReportMetric(serial.Seconds()/par.Seconds(), "x")
		}
	})
}

// BenchmarkServe measures the serving tier against the batch path it
// wraps. `direct` is the reference: the same request set run serially
// through serve.Run on a fresh Exec. `served` pushes the set through a
// real HTTP server with four closed-loop clients — its ns/op over
// direct's is the end-to-end overhead of the serving stack (decode,
// admission, weighted-fair queueing, response marshaling), gated by
// benchjson's -check-max-ratio. `qps=64` drives the server open-loop at a
// fixed arrival rate and reports the client-observed p50/p99.
func BenchmarkServe(b *testing.B) {
	templates := serveBenchTemplates()
	weights := map[string]int{"prod": 3, "batch": 1}
	newServer := func() (*serve.Server, *httptest.Server) {
		srv := serve.New(serve.Options{
			Exec:          sampling.NewExec(parallel.NewScheduler(4), nil),
			Workers:       4,
			QueueDepth:    len(templates),
			TenantWeights: weights,
		})
		return srv, httptest.NewServer(srv.Handler())
	}
	post := func(client *http.Client, url string, req *serve.StudyRequest) error {
		doc, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(url+serve.StudyPath, "application/json", bytes.NewReader(doc))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, body)
		}
		return nil
	}

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex := sampling.NewExec(parallel.NewScheduler(4), nil)
			for j := range templates {
				req := templates[j]
				if _, err := serve.Run(ex, nil, &req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("served", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ts := newServer()
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(templates); j += 4 {
						req := templates[j]
						if err := post(ts.Client(), ts.URL, &req); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			ts.Close()
		}
	})
	b.Run("traced", func(b *testing.B) {
		// The served arm with tracing and provenance requested on every
		// study: its ns/op over served's is the full observability tax
		// (span collection, flight recording, trace marshaling), gated at
		// 1.2x by benchjson's -check-max-ratio.
		for i := 0; i < b.N; i++ {
			_, ts := newServer()
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := c; j < len(templates); j += 4 {
						req := templates[j]
						req.Trace = true
						req.Provenance = true
						if err := post(ts.Client(), ts.URL, &req); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			ts.Close()
		}
	})
	b.Run("qps=64", func(b *testing.B) {
		var p50, p99 time.Duration
		for i := 0; i < b.N; i++ {
			_, ts := newServer()
			gen := &serve.LoadGen{
				Rate:      64,
				Requests:  len(templates),
				Seed:      1,
				Templates: templates,
				Do: func(req *serve.StudyRequest) error {
					return post(ts.Client(), ts.URL, req)
				},
			}
			rep, err := gen.Run()
			ts.Close()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Errors > 0 {
				b.Fatalf("%d of %d requests failed", rep.Errors, rep.Requests)
			}
			p50, p99 = rep.P50, rep.P99
		}
		b.ReportMetric(float64(p50)/1e6, "p50-ms")
		b.ReportMetric(float64(p99)/1e6, "p99-ms")
	})
}

// --- Substrate microbenchmarks ---

// BenchmarkSimulatorThroughput measures the cycle-level simulator's warp-
// instruction rate on a mixed kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	k := KernelDesc{
		Name: "bench", Grid: D1(640), Block: D1(256),
		Mix:              InstrMix{Compute: 120, GlobalLoads: 12, SharedLoads: 20},
		CoalescingFactor: 4, WorkingSetBytes: 32 << 20, StridedFraction: 0.7,
		DivergenceEff: 0.95, Seed: 42,
	}
	var warpInstrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.New(VoltaV100()).RunKernel(&k, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		warpInstrs += res.WarpInstrs
	}
	b.ReportMetric(float64(warpInstrs)/b.Elapsed().Seconds()/1e6, "Mwi/s")
}

// BenchmarkSiliconModel measures the analytical hardware model's kernel
// evaluation rate — it must stay in the nanoseconds for million-kernel
// silicon walks.
func BenchmarkSiliconModel(b *testing.B) {
	w := workload.Find("MLPerf/ssd_training")
	k := w.Kernel(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteSilicon(VoltaV100(), &k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansSweep measures the PKS clustering sweep on a
// profiler-scale point set.
func BenchmarkKMeansSweep(b *testing.B) {
	rng := stats.NewRNG(9)
	pts := make([][]float64, 5000)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := cluster.NewDataset(pts)
		if err != nil {
			b.Fatal(err)
		}
		for k := 1; k <= 10; k++ {
			if _, err := ds.KMeans(k, cluster.KMeansOptions{Seed: uint64(k)}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRollingDetector measures PKP's per-cycle bookkeeping cost.
func BenchmarkRollingDetector(b *testing.B) {
	p := pkp.New(pkp.Options{})
	t := &sim.Telemetry{WaveSize: 80, BlocksTotal: 800, IssuedThisCycle: 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Cycle = int64(i)
		p.Tick(t)
	}
}

// BenchmarkWorkloadGeneration measures index-based kernel generation,
// which streaming million-kernel profiling passes depend on.
func BenchmarkWorkloadGeneration(b *testing.B) {
	w := workload.Find("MLPerf/bert_offline_inf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := w.Kernel(i % w.N)
		if k.Grid.X == 0 {
			b.Fatal("bad kernel")
		}
	}
}
