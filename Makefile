# Standard entry points; CI (.github/workflows/ci.yml) runs vet+build+test+race.

GO ?= go

.PHONY: all vet build test race bench bench-all bench-check ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency layer. internal/parallel, internal/obs
# (lock-free instruments, concurrent tracer/audit) and internal/serve
# (the serving tier: concurrent admission, weighted-fair queue, fault
# injection) are fast enough to race in full; the experiments and
# workload suites run with -short so the concurrency regression tests
# (singleflight, 64-goroutine stress, fuzz seed corpus) execute under
# the detector without paying for the full artifact pipeline at ~10x
# race overhead. `make test` covers the heavy paths (including the
# parallel-vs-serial determinism golden) natively.
race:
	$(GO) test -race ./internal/parallel/... ./internal/obs/... ./internal/serve/...
	$(GO) test -race -short ./internal/experiments/... ./internal/workload/...

# Snapshot the perf trajectory: substrate microbenchmarks at full benchtime
# (BenchmarkSimTick's allocs/op==0 only means something once setup costs
# amortize) plus the study fan-out speedup at one iteration, rendered into
# a diffable JSON artifact. bench-all is the old full artifact sweep.
bench:
	@{ $(GO) test -run NONE -bench 'SimTick' -benchmem ./internal/sim ; \
	   $(GO) test -run NONE -bench 'SimulatorThroughput|RollingDetector|KMeansSweep|SiliconModel|WorkloadGeneration' -benchmem . ; \
	   $(GO) test -run NONE -bench 'StudyParallel|StudyKernelSched|StudyCache|StudyPredict|StudyRemote|StudySuiteDedup|StudyStream|Serve' -benchtime=1x . ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_study.json -baseline BENCH_study.json \
	    -note "recorded on the 1-CPU reference box: parallel and remote sub-benches (StudyParallel/p=4, StudyRemote/workers=2) are slower than their serial arms there because fan-out only adds overhead without cores to spread across; their speedup gates apply on >= 4 CPUs"
	@echo wrote BENCH_study.json

bench-all:
	$(GO) test -bench=. -benchtime=1x .

# Regression smoke: re-run the two hot-path benchmarks and fail if either
# is more than 25% slower (ns/op) than the committed BENCH_study.json.
# Short benchtime keeps this cheap enough for CI; the generous tolerance
# absorbs runner noise while still catching real algorithmic regressions.
# The second stage gates relative speed within this run: the study must
# scale (p=4 at least 1.5x faster than p=1, skipped below 4 CPUs), the
# warm artifact cache must be at least 5x faster than cold, and two
# loopback worker processes must beat single-process by 1.5x (also
# skipped below 4 CPUs — worker processes on one core only add RPC
# overhead). The third stage bounds the serving tier's overhead: the
# same request batch through the HTTP server (decode, admission,
# weighted-fair queue, marshaling) may cost at most 3x the serial batch
# path, tracing-enabled serving may cost at most 1.2x tracing-off, and
# the open-loop qps arm records client-observed p50/p99. The fourth stage
# pins the suite-dedup saving itself: per-app PKS must simulate at least
# 1.3x more warp-instructions than the shared cross-workload selection on
# the gauss suite — the headline reduction internal/dedup exists for.
# The fifth stage gates the streaming overlap: at >= 4 CPUs the streaming
# pipeline must finish at least 1.3x faster than the phase-sequential run
# of the same study (skipped below 4 CPUs, where there are no spare cores
# to overlap speculative simulation onto). The sixth stage gates the
# learned tier-0 predictor: a study served from a trained model must run
# at least 1.3x faster than the same study fully simulated — no CPU
# floor, because the win is work elimination rather than parallelism.
bench-check:
	@{ $(GO) test -run NONE -bench 'SimulatorThroughput' -benchtime=5x . ; \
	   $(GO) test -run NONE -bench 'KMeansSweep' -benchtime=5x . ; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_study.json \
	    -check SimulatorThroughput,KMeansSweep -tolerance 25
	@$(GO) test -run NONE -bench 'StudyParallel/p=|StudyCache/(cold|warm)|StudyRemote/(local|workers)' -benchtime=1x . \
	| $(GO) run ./cmd/benchjson -o /dev/null \
	    -check-ratio 'StudyParallel/p=1:StudyParallel/p=4:1.5:4,StudyCache/cold:StudyCache/warm:5,StudyRemote/local:StudyRemote/workers=2:1.5:4'
	@$(GO) test -run NONE -bench 'Serve/(direct|served|traced|qps)' -benchtime=1x . \
	| $(GO) run ./cmd/benchjson -o /dev/null \
	    -check-max-ratio 'Serve/served:Serve/direct:3,Serve/traced:Serve/served:1.2'
	@$(GO) test -run NONE -bench 'StudySuiteDedup' -benchtime=1x . \
	| $(GO) run ./cmd/benchjson -o /dev/null \
	    -check-metric-ratio 'warp-instrs:StudySuiteDedup/perapp:StudySuiteDedup/dedup:1.3'
	@$(GO) test -run NONE -bench 'StudyStream/(sequential|streaming)' -benchtime=1x . \
	| $(GO) run ./cmd/benchjson -o /dev/null \
	    -check-ratio 'StudyStream/sequential:StudyStream/streaming:1.3:4'
	@$(GO) test -run NONE -bench 'StudyPredict/(nopredict|predict)' -benchtime=1x . \
	| $(GO) run ./cmd/benchjson -o /dev/null \
	    -check-ratio 'StudyPredict/nopredict:StudyPredict/predict:1.3'

ci: vet build test race bench-check
