# Standard entry points; CI (.github/workflows/ci.yml) runs vet+build+test+race.

GO ?= go

.PHONY: all vet build test race bench ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency layer. internal/parallel is fast enough to
# race in full; the experiments and workload suites run with -short so the
# concurrency regression tests (singleflight, 64-goroutine stress, fuzz
# seed corpus) execute under the detector without paying for the full
# artifact pipeline at ~10x race overhead. `make test` covers the heavy
# paths (including the parallel-vs-serial determinism golden) natively.
race:
	$(GO) test -race ./internal/parallel/...
	$(GO) test -race -short ./internal/experiments/... ./internal/workload/...

bench:
	$(GO) test -bench=. -benchtime=1x .

ci: vet build test race
